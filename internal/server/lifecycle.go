// Model lifecycle management: zero-downtime multi-model serving with shadow
// rollout (DESIGN.md §14).
//
// The server holds its serving engine behind an atomic pointer. Operators
// drive a small state machine over three endpoints:
//
//	POST /v1/models          load a candidate checkpoint (versioned
//	                         PYTHCKPT header + drift sidecar) into a second
//	                         engine → state "shadowing"
//	POST /v1/models/promote  candidate becomes primary; the old primary is
//	                         parked as the rollback target
//	POST /v1/models/rollback discard a candidate, or restore the parked
//	                         previous primary
//	GET  /v1/models          report the state machine: per-slot id, path,
//	                         lease counts, shadow telemetry totals
//
// While a candidate is shadowing, a deterministic seeded sample of live
// predict / predict-batch traffic is double-scored on it — after the
// primary response is written, on a separate goroutine, so the serving path
// is byte-identical with shadowing on or off (proved by the bit-identity
// test). Each shadow score records per-model obs.Labels telemetry:
// candidate latency, confidence distribution, drift-vs-baseline χ² (from
// the candidate's own sidecar), and the per-column agreement rate between
// primary and candidate — the evidence an operator reads before promoting.
//
// Swaps never drop in-flight requests: every request takes a lease on the
// engine it reads from the pointer (infer.Engine.Acquire/Release), and a
// swapped-out engine is retired, draining via refcount before its release
// is logged. Promote and rollback build a fresh engine around the surviving
// model rather than mutating a live one, so engine configuration
// (instrumentation, worker counts) is immutable for an engine's lifetime.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
	"github.com/sematype/pythagoras/internal/table"
)

// maxModelsBodyBytes caps the POST /v1/models control-plane body — it names
// a checkpoint, it does not carry one.
const maxModelsBodyBytes = 1 << 20

// errNoModel is returned by the lease helpers when no model is loaded (or,
// transiently impossible in practice, every pointer read raced a retire).
var errNoModel = errors.New("no model loaded")

// modelSlot binds one loaded model version to the engine serving it.
// Slots are immutable once published through an atomic pointer: every
// lifecycle transition publishes a new slot and retires the old slot's
// engine. The model itself is shared across a version's slots (a rollback
// re-engines the parked model, it does not re-read the checkpoint).
type modelSlot struct {
	id       string
	path     string // checkpoint path, "" for the boot-time model
	model    *core.Model
	engine   *infer.Engine
	drift    *obs.DriftMonitor // per-model monitor from the sidecar; may be nil
	loadedAt time.Time
	mx       *slotMetrics
}

// slotMetrics are one model id's pre-resolved labeled telemetry handles.
// Counters are cumulative per id — reloading the same id continues its
// series, which is what an operator comparing attempts wants.
type slotMetrics struct {
	scored     *obs.Counter   // shadow.tables.scored{model=}
	errors     *obs.Counter   // shadow.errors{model=}
	compared   *obs.Counter   // shadow.columns.compared{model=}
	agree      *obs.Counter   // shadow.columns.agree{model=}
	latency    *obs.Histogram // shadow.latency.seconds{model=}
	confidence *obs.Histogram // shadow.confidence{model=}
}

// newSlotMetrics resolves the labeled per-model series for id and registers
// the derived agreement-rate gauge. Safe to call repeatedly for one id.
func (s *Server) newSlotMetrics(id string) *slotMetrics {
	l := func(name string) string { return obs.Labels(name, "model", id) }
	mx := &slotMetrics{
		scored:     s.metrics.Counter(l("shadow.tables.scored")),
		errors:     s.metrics.Counter(l("shadow.errors")),
		compared:   s.metrics.Counter(l("shadow.columns.compared")),
		agree:      s.metrics.Counter(l("shadow.columns.agree")),
		latency:    s.metrics.Histogram(l("shadow.latency.seconds"), nil),
		confidence: s.metrics.Histogram(l("shadow.confidence"), obs.ConfidenceBuckets),
	}
	compared, agree := mx.compared, mx.agree
	s.metrics.GaugeFunc(l("shadow.agreement.rate"), func() float64 {
		c := compared.Value()
		if c == 0 {
			return 0
		}
		return float64(agree.Value()) / float64(c)
	})
	return mx
}

// leasePrimary reads the primary pointer and takes a lease on its engine.
// An Acquire can only fail when the slot was swapped out and fully drained
// between the pointer read and the CAS — re-reading the pointer then finds
// the replacement, so the loop converges in one extra iteration; the bound
// is pure paranoia.
func (s *Server) leasePrimary() (*modelSlot, bool) {
	for i := 0; i < 64; i++ {
		slot := s.primary.Load()
		if slot == nil {
			return nil, false
		}
		if slot.engine.Acquire() {
			return slot, true
		}
	}
	return nil, false
}

// newServingEngine builds a fresh engine around m with the serving
// configuration cloned from the boot engine: same worker fan-out and batch
// bound, the server's fault set (so chaos suites reach lifecycle-created
// engines), and — for primary-role engines only — the shared metrics
// registry. Shadow engines stay uninstrumented: candidate scoring must not
// pollute the primary's infer.* series; the shadow path records its own
// per-model labeled telemetry instead.
func (s *Server) newServingEngine(m *core.Model, instrumented bool) *infer.Engine {
	opts := []infer.Option{
		infer.WithWorkers(s.engineWorkers),
		infer.WithMaxBatch(s.engineMaxBatch),
		infer.WithFaults(s.faults),
	}
	eng := infer.New(m, opts...)
	if instrumented {
		eng.EnableMetrics(s.metrics)
	}
	return eng
}

// retireSlot retires a slot's engine: in-flight leases drain via refcount,
// then the drained callback records the release. role names what the engine
// was doing, for the log line.
func (s *Server) retireSlot(slot *modelSlot, role string) {
	if slot == nil || slot.engine == nil {
		return
	}
	id := slot.id
	drained := s.drained
	logger, slog := s.logger, s.slog
	slot.engine.Retire(func() {
		drained.Inc()
		if logger != nil {
			logger.Printf("models: %s engine for %q drained and released", role, id)
		}
		slog.Log(logz.Info, "model engine drained", "model", id, "role", role)
	})
}

// recordSwap counts a lifecycle event under models.swap{event=}, annotates
// the SLO timeline, and logs it.
func (s *Server) recordSwap(event, detail string) {
	s.metrics.Counter(obs.Labels("models.swap", "event", event)).Inc()
	s.sloEng.Annotate(event, detail)
	if s.logger != nil {
		s.logger.Printf("models: %s %s", event, detail)
	}
	s.slog.Log(logz.Info, "model "+event, "detail", detail)
}

// --- deterministic shadow sampling ---

// splitmix64 is the SplitMix64 finalizer — the same mixer the trainer and
// trace recorder use for seeded determinism.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// shadowSampled decides, deterministically from the shadow seed and a
// per-decision sequence number, whether this request's tables are
// double-scored on the candidate. No global RNG, no lock: the same request
// sequence against the same seed samples identically on every run, which is
// what makes shadow behavior reproducible in tests and incident forensics.
func (s *Server) shadowSampled() bool {
	switch {
	case s.shadowSample <= 0:
		return false
	case s.shadowSample >= 1:
		return true
	}
	u := float64(splitmix64(s.shadowSeed+s.shadowSeq.Add(1))>>11) / float64(1<<53)
	return u < s.shadowSample
}

// maybeShadow double-scores one served request's tables on the candidate,
// when one is shadowing and the deterministic sampler selects the request.
// Called strictly after the primary response has been written: the shadow
// work runs on its own goroutine, against its own context, holding its own
// lease on the candidate engine — nothing it does (slow scoring, candidate
// errors, injected faults) can reach back into the serving path. The
// goroutine is tracked in shadowWG so Shutdown and the lifecycle tests can
// prove none leak.
func (s *Server) maybeShadow(ts []*table.Table, primary [][]core.ColumnPrediction) {
	cand := s.candidate.Load()
	if cand == nil || !s.shadowSampled() {
		return
	}
	if !cand.engine.Acquire() {
		return // candidate discarded between pointer read and lease
	}
	s.shadowWG.Add(1)
	go func() {
		defer s.shadowWG.Done()
		defer cand.engine.Release()
		s.shadowScore(cand, ts, primary)
	}()
}

// shadowScore runs the candidate over the sampled tables and records the
// per-model comparison telemetry. Errors (including injected ServerShadow
// faults) are counted, never propagated — the request they shadowed has
// long been answered.
func (s *Server) shadowScore(cand *modelSlot, ts []*table.Table, primary [][]core.ColumnPrediction) {
	ctx := context.Background()
	if err := s.faults.Fire(ctx, faultinject.ServerShadow); err != nil {
		cand.mx.errors.Inc()
		return
	}
	t0 := time.Now()
	out, err := cand.engine.PredictBatchCtx(ctx, ts)
	cand.mx.latency.Since(t0)
	if err != nil {
		cand.mx.errors.Inc()
		return
	}
	cand.mx.scored.Add(uint64(len(ts)))
	for i := range out {
		var pp []core.ColumnPrediction
		if i < len(primary) {
			pp = primary[i]
		}
		for j := range out[i] {
			p := &out[i][j]
			cand.mx.confidence.Observe(p.Confidence)
			cand.drift.Observe(p.Type, p.Confidence) // nil-safe
			if j < len(pp) {
				cand.mx.compared.Inc()
				if pp[j].Type == p.Type {
					cand.mx.agree.Inc()
				}
			}
		}
	}
}

// --- wire types ---

// ModelsRequest is the body of POST /v1/models.
type ModelsRequest struct {
	// ID names the candidate in telemetry labels and lifecycle responses.
	// Defaults to the checkpoint's base name without extension.
	ID string `json:"id,omitempty"`
	// Path locates the checkpoint. With a configured models directory
	// (serve -models-dir) it must be a relative path inside it; without
	// one, any path the process can read.
	Path string `json:"path"`
}

// SlotStatus describes one lifecycle slot in GET /v1/models.
type SlotStatus struct {
	ID       string    `json:"id"`
	Path     string    `json:"path,omitempty"`
	LoadedAt time.Time `json:"loaded_at"`
	Types    int       `json:"types"`
	Leases   int64     `json:"leases"`  // current engine lease count (owner included until retire)
	Retired  bool      `json:"retired"` // engine swapped out, draining or drained
	Drift    bool      `json:"drift"`   // per-model drift baseline loaded
}

// ModelsResponse is the body of GET /v1/models and the lifecycle POSTs.
type ModelsResponse struct {
	State     string      `json:"state"` // serving | shadowing | promoted | rolled-back
	Primary   *SlotStatus `json:"primary,omitempty"`
	Candidate *SlotStatus `json:"candidate,omitempty"`
	Previous  *SlotStatus `json:"previous,omitempty"`
	// ShadowSample is the configured sampling fraction of live traffic
	// double-scored on a shadowing candidate.
	ShadowSample float64 `json:"shadow_sample"`
}

func slotStatus(slot *modelSlot) *SlotStatus {
	if slot == nil {
		return nil
	}
	st := &SlotStatus{
		ID:       slot.id,
		Path:     slot.path,
		LoadedAt: slot.loadedAt,
		Leases:   slot.engine.Refs(),
		Retired:  slot.engine.Retired(),
		Drift:    slot.drift != nil,
	}
	if slot.model != nil {
		st.Types = len(slot.model.Types())
	}
	return st
}

// modelsResponse assembles the current state machine view. Callers hold
// lcMu (the POST handlers) or accept a racy-but-consistent snapshot (GET).
func (s *Server) modelsResponse(state string) ModelsResponse {
	return ModelsResponse{
		State:        state,
		Primary:      slotStatus(s.primary.Load()),
		Candidate:    slotStatus(s.candidate.Load()),
		Previous:     slotStatus(s.previous.Load()),
		ShadowSample: s.shadowSample,
	}
}

// resolveModelPath validates and resolves a requested checkpoint path
// against the configured models directory. With no directory configured the
// path is trusted as given (the operator runs the process; the API is not
// exposed beyond them) — with one, only local relative paths inside it are
// accepted, so a compromised catalog tool cannot walk the filesystem.
func (s *Server) resolveModelPath(req string) (string, error) {
	if req == "" {
		return "", fmt.Errorf("path is required")
	}
	if s.modelsDir == "" {
		return req, nil
	}
	if filepath.IsAbs(req) || !filepath.IsLocal(req) {
		return "", fmt.Errorf("path %q must be relative inside the models directory", req)
	}
	return filepath.Join(s.modelsDir, req), nil
}

// handleModelsLoad is POST /v1/models: load a candidate checkpoint into a
// shadow engine. A failed load changes nothing — the primary keeps serving
// and /v1/readyz stays ready (regression-tested). A second load replaces
// the previous candidate, which drains and releases.
func (s *Server) handleModelsLoad(w http.ResponseWriter, r *http.Request) {
	var req ModelsRequest
	if !decodeJSONBody(w, r, maxModelsBodyBytes, &req) {
		return
	}
	path, err := s.resolveModelPath(req.Path)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := req.ID
	if id == "" {
		id = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}

	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	prim := s.primary.Load()
	if prim == nil || prim.model == nil {
		writeErr(w, http.StatusConflict, "no primary model to inherit an encoder from")
		return
	}
	if err := s.faults.Fire(r.Context(), faultinject.ServerModelLoad); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "load model %q: %v", path, err)
		return
	}
	bundle, err := core.LoadServing(path, core.Config{Encoder: prim.model.Encoder()})
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusNotFound
		}
		writeErr(w, status, "load model %q: %v", path, err)
		return
	}
	if bundle.DriftErr != nil && s.logger != nil {
		s.logger.Printf("models: candidate %q drift sidecar unusable, shadowing without drift telemetry: %v", id, bundle.DriftErr)
	}

	slot := &modelSlot{
		id:       id,
		path:     path,
		model:    bundle.Model,
		engine:   s.newServingEngine(bundle.Model, false),
		drift:    bundle.Drift,
		loadedAt: time.Now(),
		mx:       s.newSlotMetrics(id),
	}
	slot.drift.RegisterLabeled(s.metrics, "model", id) // nil-safe
	if old := s.candidate.Swap(slot); old != nil {
		s.retireSlot(old, "shadow")
	}
	s.recordSwap("load", fmt.Sprintf("candidate %q from %s", id, path))
	writeJSON(w, http.StatusOK, s.modelsResponse("shadowing"))
}

// handleModelsStatus is GET /v1/models.
func (s *Server) handleModelsStatus(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if s.candidate.Load() != nil {
		state = "shadowing"
	}
	writeJSON(w, http.StatusOK, s.modelsResponse(state))
}

// handleModelsPromote is POST /v1/models/promote: the shadowing candidate
// becomes primary. The serving pointer moves first — requests admitted from
// this instant run on the candidate's model behind a freshly instrumented
// engine — then the outgoing engines retire and drain via refcount; no
// in-flight request on the old primary (or old shadow scores on the
// candidate's shadow engine) is dropped. The demoted primary is parked as
// the rollback target.
func (s *Server) handleModelsPromote(w http.ResponseWriter, r *http.Request) {
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	cand := s.candidate.Load()
	if cand == nil {
		writeErr(w, http.StatusConflict, "no candidate is shadowing")
		return
	}
	// A re-score scoring on the outgoing primary is obsolete the moment the
	// pointer moves — cancel it; the operator re-runs it on the new primary.
	s.cancelRescore("primary promoted mid-rescore")
	promoted := &modelSlot{
		id:       cand.id,
		path:     cand.path,
		model:    cand.model,
		engine:   s.newServingEngine(cand.model, true),
		drift:    cand.drift,
		loadedAt: cand.loadedAt,
		mx:       cand.mx,
	}
	// The promoted model's monitor also takes over the unlabeled drift.*
	// gauges, which always describe the current primary.
	promoted.drift.Register(s.metrics)

	old := s.primary.Swap(promoted)
	s.candidate.Store(nil)
	if err := s.faults.Fire(r.Context(), faultinject.ServerSwap); err != nil {
		// The swap is already visible; an injected fault here models a slow
		// or crashing swap epilogue, not a failed swap.
		s.slog.Log(logz.Warn, "swap fault injected", "err", err.Error())
	}
	s.retireSlot(cand, "shadow")
	if prev := s.previous.Swap(old); prev != nil {
		// An older rollback target exists; promoting again abandons it.
		s.retireSlot(prev, "parked")
	}
	s.retireSlot(old, "primary")
	s.recordSwap("promote", fmt.Sprintf("%q promoted over %q", promoted.id, old.id))
	writeJSON(w, http.StatusOK, s.modelsResponse("promoted"))
}

// handleModelsRollback is POST /v1/models/rollback. Two meanings, by state:
// a shadowing candidate is discarded (shadow scoring drains, primary
// untouched); with no candidate, the parked previous primary is restored
// behind a fresh engine and the rolled-back-from model retires. With
// neither, 409.
func (s *Server) handleModelsRollback(w http.ResponseWriter, r *http.Request) {
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	if cand := s.candidate.Swap(nil); cand != nil {
		s.retireSlot(cand, "shadow")
		s.recordSwap("rollback", fmt.Sprintf("candidate %q discarded", cand.id))
		writeJSON(w, http.StatusOK, s.modelsResponse("rolled-back"))
		return
	}
	prev := s.previous.Swap(nil)
	if prev == nil {
		writeErr(w, http.StatusConflict, "nothing to roll back: no candidate and no previous primary")
		return
	}
	// Rolling the primary back mid-rescore cancels the re-score: it is
	// scoring on the model being rolled away from. The shadow build aborts,
	// the old index keeps serving untouched, and the durable cursor stays on
	// disk (a later re-score by the same model resumes it; any other model
	// starts fresh).
	s.cancelRescore("rollback")
	restored := &modelSlot{
		id:       prev.id,
		path:     prev.path,
		model:    prev.model,
		engine:   s.newServingEngine(prev.model, true),
		drift:    prev.drift,
		loadedAt: time.Now(),
		mx:       prev.mx,
	}
	restored.drift.Register(s.metrics)
	old := s.primary.Swap(restored)
	if err := s.faults.Fire(r.Context(), faultinject.ServerSwap); err != nil {
		s.slog.Log(logz.Warn, "swap fault injected", "err", err.Error())
	}
	s.retireSlot(old, "primary")
	s.recordSwap("rollback", fmt.Sprintf("%q restored over %q", restored.id, old.id))
	writeJSON(w, http.StatusOK, s.modelsResponse("rolled-back"))
}
