package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/obs/watch"
)

// testClock is the shared fake clock the SLO engine and the watchdog both
// read, so burn-rate windows and rule hysteresis advance in lockstep.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosFlightDir keeps failed runs' flight records under testdata so CI can
// upload them as the failure artifact; a passing run cleans up after itself.
func chaosFlightDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("testdata", "flight-chaos", t.Name())
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// TestWatchdogChaosBurstClosesTheLoop is the acceptance scenario for the
// watchdog (DESIGN.md §16): a burst beyond -max-inflight sheds requests,
// the induced burn rate trips slo-fast-burn on the next tick, the firing
// alert captures a flight record whose traces include the rejected
// requests, the re-score budget is halved while the alert is live and
// restored when it clears — and nothing leaks.
func TestWatchdogChaosBurstClosesTheLoop(t *testing.T) {
	clk := newTestClock()
	// Three-nines objective: 4 shed out of 6 events is a burn rate of
	// (4/6)/0.01 ≈ 66.7 on every window — far over the fast-burn pair
	// threshold of 14.4, and deterministic because the clock never moves
	// while events land.
	eng := slo.New(slo.DefaultObjectives(0.99, 50*time.Millisecond), slo.WithNow(clk.now))
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(150*time.Millisecond))
	rec := obs.NewTraceRecorder(obs.TraceConfig{SampleRate: 1, Buffer: 64})
	s := chaosServer(t, nil, srvFaults,
		WithMaxInflight(1), WithSLO(eng), WithWatchNow(clk.now),
		WithFlightDir(chaosFlightDir(t), 8), WithTraceRecorder(rec))
	if s.Flights() == nil {
		t.Fatal("flight recorder not enabled")
	}
	base := runtime.NumGoroutine()

	// Saturate: one admitted (asleep in the injected fault), one queued —
	// capacity exactly full — then four synchronous requests that must shed.
	raw, _ := json.Marshal(sampleRequest(""))
	slow := make(chan int, 2)
	var wg sync.WaitGroup
	send := func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, req)
		slow <- rr.Code
	}
	wg.Add(1)
	go send()
	for deadline := time.Now().Add(2 * time.Second); s.inflight.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go send()
	for deadline := time.Now().Add(2 * time.Second); s.queued.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	var shedBody errorResponse
	for i := 0; i < 4; i++ {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
		s.ServeHTTP(rr, req)
		if rr.Code != http.StatusTooManyRequests {
			t.Fatalf("overload request %d = %d, want 429", i, rr.Code)
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &shedBody); err != nil {
			t.Fatalf("429 body: %v: %s", err, rr.Body)
		}
	}
	wg.Wait()
	close(slow)
	for code := range slow {
		if code != http.StatusOK {
			t.Fatalf("held request finished %d, want 200", code)
		}
	}

	// The shed error body names a trace that really exists (satellite
	// regression: admission rejections used to be invisible to /v1/traces).
	if shedBody.TraceID == "" {
		t.Fatal("429 body carries no trace_id")
	}
	var traces TracesResponse
	getJSON(t, s, "/v1/traces?error=1", &traces)
	found := false
	for _, tr := range traces.Traces {
		if tr.TraceID == shedBody.TraceID {
			found = true
			if tr.Root != "reject" {
				t.Fatalf("shed trace root = %q, want reject", tr.Root)
			}
		}
	}
	if !found {
		t.Fatalf("shed trace %s not in /v1/traces (%d traces)", shedBody.TraceID, traces.Count)
	}

	// One tick: the fast burn has no for-duration, so it must fire now.
	if got := s.RescoreBudget().Limit(); got != 2 {
		t.Fatalf("pre-alert budget limit = %d, want base 2", got)
	}
	s.Watchdog().Tick()
	var rep watch.Report
	getJSON(t, s, "/v1/alerts", &rep)
	var fast *watch.Alert
	for i := range rep.Active {
		if rep.Active[i].Rule == "slo-fast-burn" {
			fast = &rep.Active[i]
		}
	}
	if fast == nil {
		t.Fatalf("slo-fast-burn not firing after tick: %+v", rep.Active)
	}
	if fast.Value <= slo.FastBurnThreshold {
		t.Fatalf("alert value %v not over threshold %v", fast.Value, slo.FastBurnThreshold)
	}
	if fast.FlightID == "" {
		t.Fatal("firing alert captured no flight record")
	}

	// The action fired: re-score budget halved from its base of 2.
	if got := s.RescoreBudget().Limit(); got != 1 {
		t.Fatalf("budget limit while fast burn fires = %d, want 1", got)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters[`watch.actions{action="rescore-throttle"}`]; got != 1 {
		t.Fatalf("rescore-throttle actions = %d, want 1", got)
	}

	// The flight record is listed and loadable over HTTP, and its evidence
	// holds the saturated window: the slow predicts and the shed rejects.
	var list FlightListResponse
	getJSON(t, s, "/v1/flight", &list)
	if list.Count == 0 {
		t.Fatal("flight list empty after capture")
	}
	var fr watch.FlightRecord
	if rr := getJSON(t, s, "/v1/flight/"+fast.FlightID, &fr); rr.Code != http.StatusOK {
		t.Fatalf("GET flight %s = %d", fast.FlightID, rr.Code)
	}
	if fr.Rule != "slo-fast-burn" || fr.GoroutineProfile == "" || fr.HeapProfile == "" || fr.Goroutines <= 0 {
		t.Fatalf("flight record incomplete: rule %q, goroutines %d", fr.Rule, fr.Goroutines)
	}
	var sawReject, sawPredict bool
	for _, tr := range fr.Traces {
		if tr.Root == "reject" && tr.Error {
			// The reject root span is the rejected request end to end — the
			// evidence of the saturated window, down to the route attribute.
			if rs := tr.RootSpan(); rs == nil || rs.Attr("route") != "/v1/predict" {
				t.Fatalf("reject trace lacks its route attribute: %+v", tr)
			}
			sawReject = true
		}
		if tr.Root == "predict" {
			sawPredict = true
		}
	}
	if !sawReject || !sawPredict {
		t.Fatalf("flight traces missing the saturated window: reject=%v predict=%v of %d traces",
			sawReject, sawPredict, len(fr.Traces))
	}
	// And the timeline got the annotation.
	annotated := false
	for _, ev := range eng.Status().Events {
		if ev.Event == "alert-firing" && ev.Detail == "slo-fast-burn" {
			annotated = true
		}
	}
	if !annotated {
		t.Fatal("alert-firing annotation missing from SLO timeline")
	}

	// Clear: ten minutes on, the 5m window has no events, the pair minimum
	// drops to zero, and after a full cool-down interval the alert clears
	// and the budget is restored.
	clk.advance(10 * time.Minute)
	s.Watchdog().Tick() // clear tick: cool-down starts
	if got := s.RescoreBudget().Limit(); got != 1 {
		t.Fatalf("budget restored before cool-down elapsed: %d", got)
	}
	clk.advance(s.Watchdog().Interval() + time.Second)
	s.Watchdog().Tick()
	getJSON(t, s, "/v1/alerts", &rep)
	for _, a := range rep.Active {
		if a.Rule == "slo-fast-burn" {
			t.Fatalf("slo-fast-burn still active after cool-down: %+v", a)
		}
	}
	cleared := false
	for _, a := range rep.Recent {
		if a.Rule == "slo-fast-burn" && a.State == "cleared" {
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("cleared slo-fast-burn not in recent history")
	}
	if got := s.RescoreBudget().Limit(); got != 2 {
		t.Fatalf("budget limit after clear = %d, want base 2", got)
	}
	snap = s.Metrics().Snapshot()
	if got := snap.Counters[`watch.actions{action="rescore-restore"}`]; got != 1 {
		t.Fatalf("rescore-restore actions = %d, want 1", got)
	}

	drain(t, s)
	settleGoroutines(t, base)
}

// TestWatchdogAutoRollbackOncePerCandidate: a candidate whose agreement
// rate stays pinned under the gate for the window is rolled back by the
// watchdog exactly once — recorded as models.swap{event="auto-rollback"}
// with a timeline annotation — and a freshly loaded candidate re-arms the
// latch.
func TestWatchdogAutoRollbackOncePerCandidate(t *testing.T) {
	clk := newTestClock()
	s := chaosServer(t, nil, nil,
		WithWatchNow(clk.now), WithShadowAgreement(0.85, 2*time.Second))
	path := savedCheckpoint(t, t.TempDir(), "cand.bin", false)

	loadPinnedLow := func(id string) {
		st := modelsPost(t, s, "/v1/models", ModelsRequest{ID: id, Path: path}, http.StatusOK)
		if st.State != "shadowing" {
			t.Fatalf("after load: %+v", st)
		}
		// Pin agreement at 10% over plenty of comparisons — far below the
		// 85% gate, and over the minShadowCompared floor.
		cand := s.candidate.Load()
		cand.mx.compared.Add(100)
		cand.mx.agree.Add(10)
	}
	swaps := func() uint64 {
		return s.Metrics().Snapshot().Counters[`models.swap{event="auto-rollback"}`]
	}

	loadPinnedLow("v2")
	// Tick 1 primes the per-candidate signal (candidate changed → signal
	// unavailable → hysteresis restarts for the new pointer).
	s.Watchdog().Tick()
	// Tick 2 starts the breach window; the for-duration hasn't elapsed.
	clk.advance(time.Second)
	s.Watchdog().Tick()
	if got := swaps(); got != 0 {
		t.Fatalf("rolled back before the agreement window elapsed: %d swaps", got)
	}
	if s.candidate.Load() == nil {
		t.Fatal("candidate discarded before the agreement window elapsed")
	}
	// Tick 3, window elapsed: fire → auto-rollback.
	clk.advance(2 * time.Second)
	s.Watchdog().Tick()
	if got := swaps(); got != 1 {
		t.Fatalf("auto-rollback swaps = %d, want 1", got)
	}
	if s.candidate.Load() != nil {
		t.Fatal("candidate still loaded after auto-rollback")
	}
	var mr ModelsResponse
	getJSON(t, s, "/v1/models", &mr)
	if mr.State != "serving" || mr.Candidate != nil {
		t.Fatalf("state after auto-rollback: %+v", mr)
	}
	annotated := false
	for _, ev := range s.SLO().Status().Events {
		if ev.Event == "auto-rollback" && strings.Contains(ev.Detail, "v2") {
			annotated = true
		}
	}
	if !annotated {
		t.Fatal("auto-rollback annotation missing from SLO timeline")
	}

	// More ticks with no candidate: the latch and the cleared rule must not
	// produce a second rollback.
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		s.Watchdog().Tick()
	}
	if got := swaps(); got != 1 {
		t.Fatalf("rollback fired again with no candidate: %d swaps", got)
	}

	// A new candidate is a new slot pointer: the latch re-arms and the same
	// sustained disagreement rolls it back too — once.
	loadPinnedLow("v3")
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		s.Watchdog().Tick()
	}
	if got := swaps(); got != 2 {
		t.Fatalf("second candidate: auto-rollback swaps = %d, want 2", got)
	}
	drain(t, s)
}

// TestWatchdogAutoRollbackLatchBlocksRefire: even if the fire action runs
// twice for the same slot (rule re-fire before the candidate pointer is
// observed nil), the pointer latch keeps the rollback at most once.
func TestWatchdogAutoRollbackLatchBlocksRefire(t *testing.T) {
	s := chaosServer(t, nil, nil)
	path := savedCheckpoint(t, t.TempDir(), "cand.bin", false)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	cand := s.candidate.Load()

	a := watch.Alert{Rule: "shadow-agreement-low", Value: 0.1, Threshold: 0.85}
	s.autoRollbackCandidate(a)
	if got := s.Metrics().Snapshot().Counters[`models.swap{event="auto-rollback"}`]; got != 1 {
		t.Fatalf("swaps after first fire = %d, want 1", got)
	}
	// Re-arm the candidate pointer to the already-rolled slot, as if the
	// action re-fired mid-swap: the latch must refuse.
	s.candidate.Store(cand)
	s.autoRollbackCandidate(a)
	if got := s.Metrics().Snapshot().Counters[`models.swap{event="auto-rollback"}`]; got != 1 {
		t.Fatalf("latch failed: swaps = %d, want 1", got)
	}
	s.candidate.Store(nil)
	drain(t, s)
}

// TestWatchdogQueueAndShedRules: sustained queue saturation and a non-zero
// shed delta fire their rules under the fake clock.
func TestWatchdogQueueAndShedRules(t *testing.T) {
	clk := newTestClock()
	s := chaosServer(t, nil, nil, WithMaxInflight(1), WithWatchNow(clk.now))
	interval := s.Watchdog().Interval()

	// Prime the shed delta cursor, then shed synthetically.
	s.Watchdog().Tick()
	s.shed.Add(3)
	clk.advance(interval)
	s.Watchdog().Tick() // breach starts (delta 3 > 0)
	s.shed.Add(1)
	clk.advance(interval)
	s.Watchdog().Tick() // for-duration elapsed → fires
	var rep watch.Report
	getJSON(t, s, "/v1/alerts", &rep)
	firing := map[string]bool{}
	for _, a := range rep.Active {
		firing[a.Rule] = true
	}
	if !firing["shed-rate"] {
		t.Fatalf("shed-rate not firing: %+v", rep.Active)
	}

	// Queue saturation reads queued/maxQueue directly; fake it via the
	// admission gauges the middleware maintains.
	s.queued.Store(int64(s.maxQueue))
	clk.advance(interval)
	s.Watchdog().Tick()
	clk.advance(interval)
	s.Watchdog().Tick()
	getJSON(t, s, "/v1/alerts", &rep)
	firing = map[string]bool{}
	for _, a := range rep.Active {
		firing[a.Rule] = true
	}
	if !firing["queue-saturated"] {
		t.Fatalf("queue-saturated not firing: %+v", rep.Active)
	}
	s.queued.Store(0)
	drain(t, s)
}

// TestFlightEndpointsEmptyAndMissing: the flight API serves an empty list
// when the recorder is disabled and a JSON 404 for unknown records.
func TestFlightEndpointsEmptyAndMissing(t *testing.T) {
	s := chaosServer(t, nil, nil)
	var list FlightListResponse
	if rr := getJSON(t, s, "/v1/flight", &list); rr.Code != http.StatusOK {
		t.Fatalf("GET /v1/flight = %d", rr.Code)
	}
	if list.Count != 0 || list.Flights == nil {
		t.Fatalf("disabled recorder list = %+v, want empty non-nil", list)
	}
	rr := getPath(t, s, "/v1/flight/flight-00000099-nope")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown flight = %d, want 404", rr.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("404 body: %s", rr.Body)
	}
	drain(t, s)
}

// TestWatchdogStoppedByShutdown: Shutdown stops a running watchdog loop —
// no ticks after, no goroutine left.
func TestWatchdogStoppedByShutdown(t *testing.T) {
	s := chaosServer(t, nil, nil, WithWatchInterval(time.Millisecond))
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Watchdog().Start(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().Snapshot().Counters["watch.ticks"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	drain(t, s) // Shutdown calls watchdog.Stop()
	n := s.Metrics().Snapshot().Counters["watch.ticks"]
	time.Sleep(20 * time.Millisecond)
	if got := s.Metrics().Snapshot().Counters["watch.ticks"]; got != n {
		t.Fatalf("watchdog still ticking after Shutdown: %d → %d", n, got)
	}
	settleGoroutines(t, base)
}

// TestErrorBodiesCarryTraceID: 5xx errors written inside the middleware
// chain name the request's trace in the JSON body.
func TestErrorBodiesCarryTraceID(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Err(errInjected))
	s := chaosServer(t, nil, srvFaults)
	rr := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rr.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.TraceID == "" {
		t.Fatalf("500 body has no trace_id: %s", rr.Body)
	}
	var traces TracesResponse
	getJSON(t, s, "/v1/traces?error=1", &traces)
	found := false
	for _, tr := range traces.Traces {
		if tr.TraceID == er.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("error trace %s not captured", er.TraceID)
	}
	drain(t, s)
}

// TestWatchdogRescoreStallRule: a re-score wedged inside a batch stops
// moving its cursor; after ten stalled intervals the rescore-stalled rule
// fires, and cancelling the run takes the signal away again.
func TestWatchdogRescoreStallRule(t *testing.T) {
	clk := newTestClock()
	srvFaults := faultinject.New().
		On(faultinject.RescoreBatch, faultinject.Sleep(5*time.Second))
	s := chaosServer(t, nil, srvFaults, WithWatchNow(clk.now), WithRescoreBatch(1))
	interval := s.Watchdog().Interval()

	// A drift-enabled primary on the way: promote exercises the drift rule's
	// live branch during the same ticks (its score sits at 0, no breach).
	path := savedCheckpoint(t, t.TempDir(), "v2.bin", true)
	modelsPost(t, s, "/v1/models", ModelsRequest{ID: "v2", Path: path}, http.StatusOK)
	modelsPost(t, s, "/v1/models/promote", nil, http.StatusOK)

	for _, id := range []string{"a", "b", "c"} {
		if rec := postJSON(t, s, "/v1/index", sampleRequest(id)); rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d", id, rec.Code)
		}
	}
	if rec := postJSON(t, s, "/v1/index/rescore", nil); rec.Code != http.StatusAccepted {
		t.Fatalf("start rescore = %d: %s", rec.Code, rec.Body)
	}

	s.Watchdog().Tick() // primes the per-run cursor
	for i := 0; i < 11; i++ {
		clk.advance(interval)
		s.Watchdog().Tick()
	}
	var rep watch.Report
	getJSON(t, s, "/v1/alerts", &rep)
	stalled := false
	for _, a := range rep.Active {
		if a.Rule == "rescore-stalled" {
			stalled = true
		}
	}
	if !stalled {
		t.Fatalf("rescore-stalled not firing after 11 stalled intervals: %+v", rep.Active)
	}

	// Rollback cancels the run; with no active run the signal goes away and
	// the alert cools down.
	modelsPost(t, s, "/v1/models/rollback", nil, http.StatusOK)
	waitRescore(t, s, "cancelled")
	clk.advance(interval)
	s.Watchdog().Tick()
	getJSON(t, s, "/v1/alerts", &rep)
	for _, a := range rep.Active {
		if a.Rule == "rescore-stalled" {
			t.Fatal("rescore-stalled still active after the run cancelled")
		}
	}
	drain(t, s)
}

// TestWatchdogSurvivesBrokenFlightDir: a -flight-dir that cannot be opened
// (here: an existing regular file) disables capture but not alerting.
func TestWatchdogSurvivesBrokenFlightDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An SLO engine with no objectives also drives the burn signals into
	// their unavailable branch: the rules stay quiet instead of firing on a
	// zero-valued read.
	s := chaosServer(t, nil, nil, WithFlightDir(file, 4), WithSLO(slo.New(nil)))
	if s.Flights() != nil {
		t.Fatal("flight recorder opened on a regular file")
	}
	if s.Watchdog() == nil {
		t.Fatal("watchdog missing without a flight dir")
	}
	s.Watchdog().Tick()
	var rep watch.Report
	if rr := getJSON(t, s, "/v1/alerts", &rep); rr.Code != http.StatusOK {
		t.Fatalf("GET /v1/alerts = %d", rr.Code)
	}
	if len(rep.Active) != 0 {
		t.Fatalf("alerts active on an idle server: %+v", rep.Active)
	}
	drain(t, s)
}
