package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
)

// alwaysRecorder keeps every finished trace — deterministic capture for
// tests.
func alwaysRecorder() *obs.TraceRecorder {
	return obs.NewTraceRecorder(obs.TraceConfig{SampleRate: 1})
}

func getTraces(t *testing.T, h http.Handler, query string) TracesResponse {
	t.Helper()
	rec := getPath(t, h, "/v1/traces"+query)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces%s = %d: %s", query, rec.Code, rec.Body.String())
	}
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("traces body not JSON: %v (%q)", err, rec.Body.String())
	}
	if resp.Count != len(resp.Traces) {
		t.Fatalf("count %d != len(traces) %d", resp.Count, len(resp.Traces))
	}
	return resp
}

func spanByName(t *testing.T, tr obs.Trace, name string) obs.SpanData {
	t.Helper()
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("trace %s has no span %q (spans: %+v)", tr.TraceID, name, tr.Spans)
	return obs.SpanData{}
}

// TestChaosTraceCapture is the acceptance check for trace capture: a fault
// injected to stall the engine's forward stage must surface in /v1/traces —
// the min_ms filter finds the slow trace, the stalled span sits under the
// route's root span with correct parentage, and the root carries the
// caller's request ID.
func TestChaosTraceCapture(t *testing.T) {
	const stall = 60 * time.Millisecond
	engFaults := faultinject.New().
		On(faultinject.InferForward, faultinject.Sleep(stall))
	s := chaosServer(t, engFaults, nil, WithTraceRecorder(alwaysRecorder()))

	raw, err := json.Marshal(sampleRequest("chaos-1"))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "chaos-req-7")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict with stalled forward = %d: %s", rec.Code, rec.Body.String())
	}

	resp := getTraces(t, s, "?min_ms=40&route=predict")
	if resp.Count != 1 {
		t.Fatalf("traces matching min_ms=40&route=predict = %d, want 1", resp.Count)
	}
	tr := resp.Traces[0]
	if tr.Root != "predict" {
		t.Fatalf("root span = %q, want predict", tr.Root)
	}
	if tr.DurationMs < 40 {
		t.Fatalf("trace duration %.2fms below the stall", tr.DurationMs)
	}

	root := spanByName(t, tr, "predict")
	if root.ParentID != "" {
		t.Fatalf("root span has parent %q", root.ParentID)
	}
	if got := root.Attr("request_id"); got != "chaos-req-7" {
		t.Fatalf("root request_id attr = %q, want chaos-req-7", got)
	}
	if got := root.Attr("route"); got != "/v1/predict" {
		t.Fatalf("root route attr = %q", got)
	}

	stalled := spanByName(t, tr, "infer")
	if stalled.ParentID != root.SpanID {
		t.Fatalf("infer span parent = %q, want root %q", stalled.ParentID, root.SpanID)
	}
	if stalled.TraceID != root.TraceID {
		t.Fatal("infer span not in the root's trace")
	}
	if stalled.DurationMs < 40 {
		t.Fatalf("stalled infer span only %.2fms, stall not visible", stalled.DurationMs)
	}
	if stalled.Path != "predict.infer" {
		t.Fatalf("infer span path = %q, want predict.infer", stalled.Path)
	}
	// The parse span must NOT have absorbed the stall — the trace localizes
	// the slowness to the right stage.
	if parse := spanByName(t, tr, "parse"); parse.DurationMs >= 40 {
		t.Fatalf("parse span %.2fms — stall attributed to wrong stage", parse.DurationMs)
	}

	// The response's request ID joins to the captured trace.
	if rec.Header().Get("X-Request-ID") != root.Attr("request_id") {
		t.Fatal("response request ID does not match traced request ID")
	}
}

// TestPanicTraceMarkedErrored (satellite: panic-recovery coverage with a
// zero-sample recorder): the recorder keeps the trace only because the
// panic marked it errored, alongside the JSON 500 and the panic counter.
func TestPanicTraceMarkedErrored(t *testing.T) {
	rec0 := obs.NewTraceRecorder(obs.TraceConfig{SampleRate: 0})
	s := trainedServer(t, WithTraceRecorder(rec0))
	s.route("GET /test/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("traced boom")
	})

	rec := getPath(t, s, "/test/panic")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if msg := decodeError(t, rec); msg != "internal server error" {
		t.Fatalf("error = %q", msg)
	}
	if got := s.Metrics().Counter("http.panics").Value(); got != 1 {
		t.Fatalf("http.panics = %d, want 1", got)
	}

	resp := getTraces(t, s, "?error=1")
	if resp.Count != 1 {
		t.Fatalf("errored traces = %d, want exactly the panicked request", resp.Count)
	}
	tr := resp.Traces[0]
	if !tr.Error || tr.Reason != "error" {
		t.Fatalf("trace error=%v reason=%q, want errored trace kept for cause", tr.Error, tr.Reason)
	}
	root := spanByName(t, tr, "/test/panic")
	if !root.Error {
		t.Fatal("panicked root span not marked errored")
	}

	// A healthy request afterwards is dropped by the zero sample rate —
	// proving the panic path, not sampling, kept the trace above.
	if rec := getPath(t, s, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", rec.Code)
	}
	if resp := getTraces(t, s, ""); resp.Count != 1 {
		t.Fatalf("trace count after healthy request = %d, want still 1", resp.Count)
	}
}

// TestErrorResponsesMarkTraces: a 4xx response (no panic) also seals the
// trace as errored via the route middleware's status check.
func TestErrorResponsesMarkTraces(t *testing.T) {
	s := trainedServer(t, WithTraceRecorder(obs.NewTraceRecorder(obs.TraceConfig{SampleRate: 0})))
	rec := postJSON(t, s, "/v1/predict", map[string]any{"name": "x"}) // no columns → 400
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty predict = %d, want 400", rec.Code)
	}
	resp := getTraces(t, s, "?error=true&route=/v1/predict")
	if resp.Count != 1 {
		t.Fatalf("errored predict traces = %d, want 1", resp.Count)
	}
	if tr := resp.Traces[0]; tr.Reason != "error" || !tr.Error {
		t.Fatalf("trace reason=%q error=%v", tr.Reason, tr.Error)
	}
}

// TestTracesEndpointFiltersAndValidation: filter composition, limit, and
// 400s on malformed query values.
func TestTracesEndpointFiltersAndValidation(t *testing.T) {
	s := trainedServer(t, WithTraceRecorder(alwaysRecorder()))
	for i := 0; i < 3; i++ {
		if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
			t.Fatalf("predict %d = %d", i, rec.Code)
		}
	}
	getPath(t, s, "/v1/healthz")

	if resp := getTraces(t, s, ""); resp.Count != 4 {
		t.Fatalf("unfiltered traces = %d, want 4", resp.Count)
	}
	if resp := getTraces(t, s, "?route=predict"); resp.Count != 3 {
		t.Fatalf("route=predict traces = %d, want 3", resp.Count)
	}
	if resp := getTraces(t, s, "?route=healthz"); resp.Count != 1 {
		t.Fatalf("route=healthz traces = %d, want 1", resp.Count)
	}
	if resp := getTraces(t, s, "?route=predict&limit=2"); resp.Count != 2 {
		t.Fatalf("limited traces = %d, want 2", resp.Count)
	}
	if resp := getTraces(t, s, "?min_ms=60000"); resp.Count != 0 {
		t.Fatalf("min_ms=60000 traces = %d, want 0", resp.Count)
	}
	if resp := getTraces(t, s, "?error=1"); resp.Count != 0 {
		t.Fatalf("errored traces = %d, want 0", resp.Count)
	}

	for _, q := range []string{"?min_ms=abc", "?min_ms=-1", "?limit=0", "?limit=x"} {
		rec := getPath(t, s, "/v1/traces"+q)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET /v1/traces%s = %d, want 400", q, rec.Code)
		}
		decodeError(t, rec)
	}
}

// TestMetricsPromFormat: ?format=prom switches /v1/metrics to the text
// exposition format while the default stays JSON.
func TestMetricsPromFormat(t *testing.T) {
	s := trainedServer(t)
	if rec := postJSON(t, s, "/v1/predict", sampleRequest("")); rec.Code != http.StatusOK {
		t.Fatalf("predict = %d", rec.Code)
	}

	rec := getPath(t, s, "/v1/metrics?format=prom")
	if rec.Code != http.StatusOK {
		t.Fatalf("prom metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE http__v1_predict_requests counter",
		"http__v1_predict_requests 1",
		"# TYPE infer_confidence histogram",
		`infer_confidence_bucket{le="+Inf"}`,
		"# TYPE runtime_goroutines gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q in:\n%s", want, body)
		}
	}

	// Default format unchanged: JSON with the established top-level keys.
	rec = getPath(t, s, "/v1/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON metrics Content-Type = %q", ct)
	}
	var snap struct {
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["http./v1/predict.requests"] != 1 {
		t.Fatal("JSON snapshot lost the unsanitized metric names")
	}
}

// TestStructuredAccessLog: WithLogz emits one JSON line per request whose
// request_id matches the response header and whose trace_id joins to the
// captured trace.
func TestStructuredAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := trainedServer(t,
		WithLogz(logz.New(&buf, logz.Info)),
		WithTraceRecorder(alwaysRecorder()))

	rec := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d", rec.Code)
	}

	line := strings.TrimSpace(buf.String())
	var entry struct {
		Level     string  `json:"level"`
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Bytes     int     `json:"bytes"`
		DurMs     float64 `json:"dur_ms"`
		RequestID string  `json:"request_id"`
		TraceID   string  `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v (%q)", err, line)
	}
	if entry.Level != "info" || entry.Msg != "request" {
		t.Fatalf("level=%q msg=%q", entry.Level, entry.Msg)
	}
	if entry.Method != "POST" || entry.Path != "/v1/predict" || entry.Status != 200 {
		t.Fatalf("logged %s %s %d", entry.Method, entry.Path, entry.Status)
	}
	if entry.Bytes <= 0 || entry.DurMs < 0 {
		t.Fatalf("bytes=%d dur_ms=%v", entry.Bytes, entry.DurMs)
	}
	if entry.RequestID != rec.Header().Get("X-Request-ID") {
		t.Fatalf("logged request_id %q != header %q", entry.RequestID, rec.Header().Get("X-Request-ID"))
	}

	resp := getTraces(t, s, "?route=predict")
	if resp.Count != 1 {
		t.Fatalf("traces = %d, want 1", resp.Count)
	}
	if entry.TraceID == "" || entry.TraceID != resp.Traces[0].TraceID {
		t.Fatalf("logged trace_id %q does not join to captured trace %q",
			entry.TraceID, resp.Traces[0].TraceID)
	}
}

// TestTracesSurviveDrain: /v1/traces is exempt from admission limits so an
// operator can pull traces from a draining instance.
func TestTracesSurviveDrain(t *testing.T) {
	s := trainedServer(t, WithTraceRecorder(alwaysRecorder()))
	getPath(t, s, "/v1/healthz")
	s.draining.Store(true)
	rec := getPath(t, s, "/v1/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("traces while draining = %d, want 200", rec.Code)
	}
}
