package server

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
)

// respWriter wraps the ResponseWriter for the whole middleware chain: it
// records status and byte counts for the access log and per-route metrics,
// and it unifies error bodies — any plain-text error response (http.Error,
// the mux's own 404/405 pages) is intercepted and rewritten through
// writeErr, so every error the server emits is the same JSON shape the
// predict handlers use.
type respWriter struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
	// traceID is set by the route middleware when the request opened a
	// trace; the structured access log joins it to /v1/traces.
	traceID string
	// intercept buffers a plain-text error body (detected at WriteHeader
	// time by status ≥ 400 with a missing or text/plain content type) until
	// finish() rewrites it as JSON.
	intercept bool
	errBuf    bytes.Buffer
}

func (w *respWriter) WriteHeader(code int) {
	if w.wroteHeader || w.intercept {
		return
	}
	if code >= 400 {
		ct := w.Header().Get("Content-Type")
		if ct == "" || strings.HasPrefix(ct, "text/plain") {
			w.status = code
			w.intercept = true
			return
		}
	}
	w.status = code
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if w.intercept {
		return w.errBuf.Write(p)
	}
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// statusOrDefault returns the response status, 200 if the handler finished
// without writing anything.
func (w *respWriter) statusOrDefault() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// abandonIntercept drops any buffered plain-text error so a later writer
// (the panic recoverer) can emit its own response.
func (w *respWriter) abandonIntercept() {
	w.intercept = false
	w.errBuf.Reset()
}

// finish flushes an intercepted plain-text error as the unified JSON error
// shape. Must be called exactly once, after the handler chain returns.
func (w *respWriter) finish() {
	if !w.intercept {
		return
	}
	status := w.status
	msg := strings.TrimSpace(w.errBuf.String())
	if msg == "" {
		msg = http.StatusText(status)
	}
	w.abandonIntercept()
	writeErr(w, status, "%s", msg)
}

type requestIDKey struct{}

// requestIDFrom returns the request ID stashed by the request-ID middleware
// ("" if the middleware did not run).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// withRequestID honors an incoming X-Request-ID header (so IDs propagate
// through catalog-tool call chains) or mints one, echoes it on the response,
// and threads it through the context for the access log and handlers.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("%08x-%06d", s.idPrefix, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// withAccessLog wraps the response in the chain's respWriter, emits one
// structured line per completed request (when a logger is configured), and
// flushes any intercepted plain-text error as JSON. Line format (stable,
// key=value, space-separated):
//
//	method=POST path=/v1/predict status=200 bytes=512 dur=1.234ms req_id=0a1b2c3d-000001
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &respWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rw, r)
		rw.finish()
		// SLO accounting happens here, at the outermost timing point, so shed
		// 429s and drain 503s (written by the admission middleware, below the
		// mux) are debited exactly like handler responses.
		if !exemptFromLimits(r.URL.Path) {
			s.recordSLO(rw.statusOrDefault(), time.Since(t0))
		}
		if s.logger != nil {
			s.logger.Printf("method=%s path=%s status=%d bytes=%d dur=%s req_id=%s",
				r.Method, r.URL.Path, rw.statusOrDefault(), rw.bytes,
				time.Since(t0).Round(time.Microsecond), requestIDFrom(r.Context()))
		}
		if s.slog != nil {
			s.slog.Log(logz.Info, "request",
				"method", r.Method, "path", r.URL.Path,
				"status", rw.statusOrDefault(), "bytes", rw.bytes,
				"dur_ms", float64(time.Since(t0))/float64(time.Millisecond),
				"request_id", requestIDFrom(r.Context()),
				"trace_id", rw.traceID)
		}
	})
}

// withRecover converts handler panics into JSON 500s (when the response has
// not started), counts them under http.panics, and logs the stack. The
// connection-abort sentinel is re-raised — net/http uses it for control
// flow.
func (s *Server) withRecover(next http.Handler) http.Handler {
	panics := s.metrics.Counter("http.panics")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			panics.Inc()
			if s.logger != nil {
				s.logger.Printf("panic serving %s %s (req_id=%s): %v\n%s",
					r.Method, r.URL.Path, requestIDFrom(r.Context()), rec, debug.Stack())
			}
			if s.slog != nil {
				s.slog.Log(logz.Error, "panic",
					"method", r.Method, "path", r.URL.Path,
					"request_id", requestIDFrom(r.Context()),
					"panic", fmt.Sprint(rec))
			}
			if rw, ok := w.(*respWriter); ok {
				rw.abandonIntercept()
				if !rw.wroteHeader {
					writeErr(rw, http.StatusInternalServerError, "internal server error")
				}
				return
			}
			writeErr(w, http.StatusInternalServerError, "internal server error")
		}()
		next.ServeHTTP(w, r)
	})
}

// exemptFromLimits reports whether a path bypasses the deadline and
// admission middleware: health/readiness checks, metrics scrapes, trace and
// SLO reads and the debug endpoints must stay reachable under overload and
// during drain — an operator diagnosing a saturated instance needs exactly
// those. The model lifecycle and re-score control planes (/v1/models*,
// /v1/index/rescore) are exempt for the same reason: rolling back a bad
// model — which also cancels a re-score running on it — is precisely what
// an operator does while the instance is overloaded by it. Exempt paths are
// also excluded from SLO accounting: a probe is not user traffic.
func exemptFromLimits(path string) bool {
	return path == "/v1/healthz" || path == "/v1/readyz" ||
		path == "/v1/metrics" || path == "/v1/traces" || path == "/v1/slo" ||
		path == "/v1/models" || strings.HasPrefix(path, "/v1/models/") ||
		path == "/v1/index/rescore" ||
		path == "/v1/alerts" ||
		path == "/v1/flight" || strings.HasPrefix(path, "/v1/flight/") ||
		strings.HasPrefix(path, "/debug/")
}

// recordSLO feeds one completed request into the SLO engine. The
// classification convention (DESIGN.md §13):
//
//   - 5xx (500 handler failures, 503 drain rejections, 504 deadline expiry)
//     is bad — the server failed to serve.
//   - 429 shed is bad — turning traffic away is a capacity failure from the
//     client's point of view, and the whole point of the burn-rate gauges is
//     to make induced shedding visible as budget spend.
//   - 499 (client vanished) is recorded nowhere: the server cannot be
//     debited or credited for a request whose outcome the client discarded.
//   - Everything else — 2xx, 3xx and non-429 4xx — is good: a well-formed
//     rejection of a malformed request is the server working as specified.
//
// Exempt paths (probes, scrapes) never reach here.
func (s *Server) recordSLO(status int, dur time.Duration) {
	if status == statusClientClosedRequest {
		return
	}
	ok := status < 500 && status != http.StatusTooManyRequests
	s.sloEng.Record(dur, ok)
}

// withDeadline attaches the per-request deadline (WithRequestTimeout) to
// the request context. Everything downstream — admission-queue waits, the
// engine's stage gates — observes the same deadline; the handler maps its
// expiry to a JSON 504. A no-op when no timeout is configured.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromLimits(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// rejectTraced wraps an admission-layer rejection — written below the mux,
// where no route span exists — in its own root "reject" span. The span is
// sealed errored, so the recorder always keeps its trace, and its trace ID
// lands on the respWriter before write runs — the JSON error body the
// client holds (429 shed, 504 queue expiry, 503 drain) then names a trace
// that actually exists in GET /v1/traces. The span covers the whole
// rejection, queue wait included, because the admission middleware calls
// this after that wait elapsed with t0 already inside the request.
func (s *Server) rejectTraced(w http.ResponseWriter, r *http.Request, write func()) {
	ctx := obs.WithRegistry(r.Context(), s.metrics)
	if s.recorder != nil {
		ctx = obs.WithRecorder(ctx, s.recorder)
	}
	_, span := obs.StartSpan(ctx, "reject")
	span.SetAttr("route", r.URL.Path)
	if id := requestIDFrom(r.Context()); id != "" {
		span.SetAttr("request_id", id)
	}
	if rw, ok := w.(*respWriter); ok {
		rw.traceID = span.TraceID()
	}
	write()
	span.SetError()
	span.End()
}

// withAdmission is the overload and lifecycle gate (DESIGN.md §9). In order:
//
//  1. Draining (Shutdown began): reject with 503 + Retry-After.
//  2. Admission: with WithMaxInflight configured, acquire the inflight
//     semaphore. A full server queues the request in a bounded queue (the
//     wait observes the request deadline); a full queue sheds it with
//     429 + Retry-After and counts http.shed.
//  3. Track the request in http.inflight — Shutdown's drain barrier — and
//     re-check draining after admission so a drain begun while queued
//     cannot be missed.
//
// Exempt paths (health, metrics, debug) skip all of it.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromLimits(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if s.draining.Load() {
			s.rejectTraced(w, r, func() {
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
			})
			return
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}: // free slot, admitted immediately
			default:
				if int(s.queued.Add(1)) > s.maxQueue {
					s.queued.Add(-1)
					s.shed.Inc()
					s.rejectTraced(w, r, func() {
						w.Header().Set("Retry-After", "1")
						writeErr(w, http.StatusTooManyRequests,
							"server at capacity (%d in flight, %d queued)", s.maxInflight, s.maxQueue)
					})
					return
				}
				select {
				case s.sem <- struct{}{}:
					s.queued.Add(-1)
				case <-r.Context().Done():
					s.queued.Add(-1)
					s.rejectTraced(w, r, func() { s.writeInferErr(w, r.Context().Err()) })
					return
				}
			}
			defer func() { <-s.sem }()
		}
		// Count before the draining re-check: Shutdown sets the flag and
		// then watches the count, so any request it could miss flag-setting
		// for is either visible in the count or sees the flag here.
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() {
			s.rejectTraced(w, r, func() {
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
			})
			return
		}
		if err := s.faults.Fire(r.Context(), faultinject.ServerHandle); err != nil {
			s.rejectTraced(w, r, func() { s.writeInferErr(w, err) })
			return
		}
		next.ServeHTTP(w, r)
	})
}

// route registers a handler with per-route metrics (DESIGN.md §8) and the
// request's root span (DESIGN.md §11):
//
//	http.<path>.requests         counter
//	http.<path>.errors           counter of ≥400 responses
//	http.<path>.latency.seconds  histogram
//	span.<name>[.<stage>...]     span-path latency histograms
//
// The pattern's method prefix ("POST /v1/predict") is stripped for metric
// names, so both methods of a path share one series. The root span is named
// by the path minus its "/v1/" prefix ("predict", "predict-batch", ...) —
// handler stage spans nest under it, keeping the established span.predict.*
// metric names — and carries the route and request ID as attributes. When
// the server has a trace recorder, the finished span tree is offered to it;
// a ≥400 response or a handler panic marks the trace errored, which the
// recorder always keeps.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	path := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		path = pattern[i+1:]
	}
	spanName := strings.TrimPrefix(path, "/v1/")
	reqs := s.metrics.Counter("http." + path + ".requests")
	errs := s.metrics.Counter("http." + path + ".errors")
	lat := s.metrics.Histogram("http."+path+".latency.seconds", nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		ctx := obs.WithRegistry(r.Context(), s.metrics)
		if s.recorder != nil {
			ctx = obs.WithRecorder(ctx, s.recorder)
		}
		ctx, span := obs.StartSpan(ctx, spanName)
		span.SetAttr("route", path)
		if id := requestIDFrom(ctx); id != "" {
			span.SetAttr("request_id", id)
		}
		rw, isRW := w.(*respWriter)
		if isRW {
			rw.traceID = span.TraceID()
		}
		// A panic unwinds past the normal End below; the deferred check
		// still seals the span (and its trace) as errored so the recorder
		// keeps it — withRecover, further out, owns the 500.
		finished := false
		defer func() {
			if !finished {
				span.SetError()
				span.End()
			}
		}()
		h(w, r.WithContext(ctx))
		finished = true
		if isRW && rw.statusOrDefault() >= 400 {
			errs.Inc()
			span.SetError()
		}
		span.End()
		lat.Since(t0)
	})
}

// newIDPrefix seeds the per-process request-ID prefix.
func newIDPrefix() uint32 { return rand.Uint32() }
