// Watchdog wiring (DESIGN.md §16): the server assembles an anomaly watchdog
// over its own signal surfaces — SLO burn-rate pairs, the primary's drift
// χ² score, shadow agreement, admission queue depth and shed rate, re-score
// cursor progress — and binds two closed-loop actions to it: a sustained
// low-agreement candidate is auto-rolled-back (at most once per candidate),
// and a firing fast burn halves the background re-score's concurrency
// budget until the alert clears. Alerts are served at GET /v1/alerts and
// the flight-record ring at GET /v1/flight[/{id}].
package server

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/obs/watch"
	"github.com/sematype/pythagoras/internal/rescore"
)

// Watchdog defaults: the agreement gate matches what an operator would eye
// on the shadow dashboard before promoting, and the comparison floor keeps
// a two-column fluke from rolling back a fresh candidate.
const (
	DefaultShadowAgreementMin    = 0.85
	DefaultShadowAgreementWindow = time.Minute
	minShadowCompared            = 8
	// driftScoreThreshold is where the primary's χ² type-distribution score
	// is treated as sustained drift rather than sampling noise.
	driftScoreThreshold = 0.5
	// queueSaturationThreshold fires when the admission queue is nearly
	// full — the tick before shedding starts.
	queueSaturationThreshold = 0.9
)

// WithWatchInterval sets the watchdog evaluation period (default
// watch.DefaultInterval). Values ≤ 0 keep the default.
func WithWatchInterval(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.watchInterval = d
		}
	}
}

// WithFlightDir enables the on-disk flight recorder: rules marked for
// capture write evidence bundles (metrics snapshot, sampled traces,
// goroutine/heap profiles, CPU delta) into a ring of at most max records
// under dir. Empty dir (the default) disables capture.
func WithFlightDir(dir string, max int) Option {
	return func(s *Server) {
		s.flightDir = dir
		s.flightMax = max
	}
}

// WithWatchNow injects the watchdog's clock — the fake-clock seam that
// makes for-duration and cool-down math exact in tests.
func WithWatchNow(now func() time.Time) Option {
	return func(s *Server) { s.watchNow = now }
}

// WithShadowAgreement tunes the auto-rollback gate: a shadowing candidate
// whose per-column agreement rate stays below min for window is discarded
// automatically (at most once per candidate). min ≤ 0 keeps the default
// gate, window ≤ 0 the default window.
func WithShadowAgreement(min float64, window time.Duration) Option {
	return func(s *Server) {
		if min > 0 {
			s.agreeMin = min
		}
		if window > 0 {
			s.agreeWindow = window
		}
	}
}

// Watchdog exposes the server's anomaly watchdog — callers start its tick
// loop (cmd/pythagoras serve) or drive Tick directly (tests).
func (s *Server) Watchdog() *watch.Watchdog { return s.watchdog }

// Flights exposes the flight-record ring, nil when no -flight-dir is set.
func (s *Server) Flights() *watch.FlightDir { return s.flights }

// RescoreBudget exposes the shared re-score concurrency budget the
// watchdog throttles.
func (s *Server) RescoreBudget() *rescore.Budget { return s.rescoreBudget }

// initWatchdog builds the watchdog and its default rules. Called once from
// NewWithEngine, after the SLO engine, recorder and registry exist.
func (s *Server) initWatchdog() {
	if s.flightDir != "" {
		fd, err := watch.OpenFlightDir(s.flightDir, s.flightMax)
		if err != nil {
			// A broken flight dir must not stop the server from starting —
			// alerting still works, only evidence capture is lost.
			if s.logger != nil {
				s.logger.Printf("watch: flight recorder disabled: %v", err)
			}
			s.slog.Log(logz.Error, "flight recorder disabled", "err", err.Error())
		} else {
			s.flights = fd
		}
	}
	s.watchdog = watch.New(watch.Config{
		Interval: s.watchInterval,
		Now:      s.watchNow,
		Annotate: s.sloEng.Annotate,
		Flights:  s.flights,
		Sources: watch.Sources{
			Metrics: func() any { return s.metrics.Snapshot() },
			Traces:  func() []obs.Trace { return s.recorder.Traces(obs.TraceFilter{Limit: 32}) },
		},
		Faults:  s.faults,
		Metrics: s.metrics,
	})
	s.addWatchRules()
}

// actionCount records one watchdog action execution under
// watch.actions{action=}.
func (s *Server) actionCount(action string) {
	s.metrics.Counter(obs.Labels("watch.actions", "action", action)).Inc()
}

// addWatchRules registers the server's built-in rule set.
func (s *Server) addWatchRules() {
	interval := s.watchdog.Interval()

	// SLO burn-rate pairs. Fast burn (page-now severity) fires on the first
	// breaching tick — the engine's own multi-window AND is the hysteresis —
	// and throttles the background re-score so recovery capacity goes to
	// live traffic. The clear restores the budget to its base.
	s.watchdog.Add(watch.Rule{
		Name:      "slo-fast-burn",
		Signal:    func() (float64, bool) { return s.burnSignal(func(a slo.BurnAlert) float64 { return math.Min(a.Rate5m, a.Rate1h) }) },
		Threshold: slo.FastBurnThreshold,
		CoolDown:  interval,
		Capture:   true,
		OnFire: func(watch.Alert) {
			half := s.rescoreBudget.Base() / 2
			if half < 1 {
				half = 1
			}
			s.rescoreBudget.SetLimit(half)
			s.actionCount("rescore-throttle")
		},
		OnClear: func(watch.Alert) {
			s.rescoreBudget.SetLimit(s.rescoreBudget.Base())
			s.actionCount("rescore-restore")
		},
	})
	s.watchdog.Add(watch.Rule{
		Name:      "slo-slow-burn",
		Signal:    func() (float64, bool) { return s.burnSignal(func(a slo.BurnAlert) float64 { return math.Min(a.Rate30m, a.Rate6h) }) },
		Threshold: slo.SlowBurnThreshold,
		CoolDown:  interval,
		Capture:   true,
	})

	// Sustained type-distribution drift on the primary model.
	s.watchdog.Add(watch.Rule{
		Name: "drift-type-score",
		Signal: func() (float64, bool) {
			slot := s.primary.Load()
			if slot == nil || slot.drift == nil {
				return 0, false
			}
			return slot.drift.TypeScore(), true
		},
		Threshold: driftScoreThreshold,
		For:       3 * interval,
		CoolDown:  interval,
		Capture:   true,
	})

	// Shadow agreement: the auto-rollback gate.
	ag := &agreementSignal{s: s}
	s.watchdog.Add(watch.Rule{
		Name:      "shadow-agreement-low",
		Signal:    ag.read,
		Threshold: s.agreeMin,
		Below:     true,
		For:       s.agreeWindow,
		Capture:   true,
		OnFire:    s.autoRollbackCandidate,
	})

	// Admission pressure: queue nearly full, and the shed rate per tick.
	s.watchdog.Add(watch.Rule{
		Name: "queue-saturated",
		Signal: func() (float64, bool) {
			if s.maxQueue <= 0 {
				return 0, false
			}
			return float64(s.queued.Load()) / float64(s.maxQueue), true
		},
		Threshold: queueSaturationThreshold,
		For:       interval,
		CoolDown:  interval,
		Capture:   true,
	})
	s.watchdog.Add(watch.Rule{
		Name:      "shed-rate",
		Signal:    (&deltaSignal{c: s.shed}).read,
		Threshold: 0, // any shedding at all in a tick window is a breach
		For:       interval,
		CoolDown:  interval,
	})

	// A re-score whose committed cursor has not moved for 10 intervals is
	// stalled — wedged on a lease, or starved below its budget.
	st := &stallSignal{s: s}
	s.watchdog.Add(watch.Rule{
		Name:      "rescore-stalled",
		Signal:    st.read,
		Threshold: 0.5,
		For:       10 * interval,
		Capture:   true,
	})
}

// burnSignal folds the SLO engine's per-objective burn alerts into one
// watchdog value: the worst objective's pair minimum, so the rule threshold
// compares against exactly the AND the engine's alert pairs define.
func (s *Server) burnSignal(pair func(slo.BurnAlert) float64) (float64, bool) {
	alerts := s.sloEng.Alerts()
	if len(alerts) == 0 {
		return 0, false
	}
	worst := 0.0
	for _, a := range alerts {
		if v := pair(a); v > worst {
			worst = v
		}
	}
	return worst, true
}

// agreementSignal reads the shadowing candidate's agreement rate. The
// signal is unavailable (ok=false) when no candidate is loaded, when the
// candidate changed since the last tick (each candidate gets a fresh
// for-duration window), or before minShadowCompared columns have been
// compared (a two-column fluke must not roll a fresh candidate back).
type agreementSignal struct {
	s    *Server
	mu   sync.Mutex
	last *modelSlot
}

func (g *agreementSignal) read() (float64, bool) {
	cand := g.s.candidate.Load()
	g.mu.Lock()
	changed := cand != g.last
	g.last = cand
	g.mu.Unlock()
	if cand == nil || changed {
		return 0, false
	}
	compared := cand.mx.compared.Value()
	if compared < minShadowCompared {
		return 0, false
	}
	return float64(cand.mx.agree.Value()) / float64(compared), true
}

// deltaSignal turns a cumulative counter into a per-tick delta. The first
// read only primes the cursor.
type deltaSignal struct {
	c      *obs.Counter
	mu     sync.Mutex
	last   uint64
	primed bool
}

func (d *deltaSignal) read() (float64, bool) {
	v := d.c.Value()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.primed {
		d.primed = true
		d.last = v
		return 0, false
	}
	delta := v - d.last
	d.last = v
	return float64(delta), true
}

// stallSignal reports 1 when the active re-score's committed cursor did not
// advance since the previous tick, 0 when it did, and unavailable when no
// re-score is running. A new run primes fresh.
type stallSignal struct {
	s        *Server
	mu       sync.Mutex
	lastRun  *rescoreRun
	lastDone int
}

func (g *stallSignal) read() (float64, bool) {
	run := g.s.activeRescore()
	if run == nil {
		g.mu.Lock()
		g.lastRun = nil
		g.mu.Unlock()
		return 0, false
	}
	done := run.drv.Progress().Done
	g.mu.Lock()
	defer g.mu.Unlock()
	if run != g.lastRun {
		g.lastRun = run
		g.lastDone = done
		return 0, false
	}
	stalled := 0.0
	if done == g.lastDone {
		stalled = 1
	}
	g.lastDone = done
	return stalled, true
}

// autoRollbackCandidate is the shadow-agreement-low fire action: discard
// the shadowing candidate, exactly the way POST /v1/models/rollback would,
// recorded as models.swap{event=auto-rollback}. The autoRolledBack pointer
// latch makes it at-most-once per loaded candidate: a slot pointer is
// unique per load, so even if the rule re-fires before its state clears,
// the same candidate is never rolled twice — and a newly loaded candidate
// resets the gate naturally by being a new pointer.
func (s *Server) autoRollbackCandidate(a watch.Alert) {
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	cand := s.candidate.Load()
	if cand == nil || cand == s.autoRolledBack {
		return
	}
	s.autoRolledBack = cand
	s.candidate.Store(nil)
	s.retireSlot(cand, "shadow")
	s.actionCount("auto-rollback")
	s.recordSwap("auto-rollback",
		fmt.Sprintf("candidate %q agreement %.3f below %.3f for %s", cand.id, a.Value, a.Threshold, s.agreeWindow))
}

// handleAlerts is GET /v1/alerts: currently firing alerts and the bounded
// history of past transitions.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.watchdog.Alerts())
}

// FlightListResponse is the body of GET /v1/flight.
type FlightListResponse struct {
	Count   int                `json:"count"`
	Flights []watch.FlightInfo `json:"flights"`
}

// handleFlightList is GET /v1/flight: the on-disk ring's records, newest
// first. Served (empty) even when the recorder is disabled, so dashboards
// need no probe.
func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	list := s.flights.List()
	if list == nil {
		list = []watch.FlightInfo{}
	}
	writeJSON(w, http.StatusOK, FlightListResponse{Count: len(list), Flights: list})
}

// handleFlightGet is GET /v1/flight/{id}: one full evidence bundle.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.flights.Load(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "flight record %q not found", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
