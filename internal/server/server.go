// Package server exposes a trained Pythagoras model and a discovery index
// over HTTP — the integration surface for data-catalog and lake-management
// tools. All prediction traffic flows through the staged inference engine
// (internal/infer): single requests take the per-table path, and the batch
// endpoint amortizes one union forward pass over many tables. Endpoints:
//
//	POST /v1/predict   {name, columns:[{header, values:[...]}]}
//	                   → per-column semantic types with confidences
//	POST /v1/predict-batch
//	                   {tables:[{name, columns:[...]}, ...]}
//	                   → one result per table, computed in a single
//	                   batched forward pass
//	POST /v1/index     same body as /v1/predict; additionally adds the
//	                   table to the discovery index (requires id)
//	GET  /v1/search?type=a&type=b
//	                   → tables containing all queried types
//	GET  /v1/join?type=a[&limit=n]
//	                   → join candidates: table pairs sharing a typed column
//	GET  /v1/union?table=id[&k=n]
//	                   → union candidates ranked by semantic-type overlap
//	GET  /v1/types     → indexed semantic types
//	GET  /v1/healthz   → liveness + model/vocabulary info
//	GET  /v1/readyz    → readiness: model loaded and not draining (load
//	                   balancers gate traffic on this; loadgen waits for it
//	                   before opening a measured window)
//	GET  /v1/metrics   → JSON snapshot of the metrics registry: per-stage
//	                   inference latency histograms, per-route request/
//	                   error/latency series, encoder cache gauges, spans
//	GET  /v1/slo       → SLO status: objectives, windowed good/bad counts,
//	                   remaining error budget and multi-window burn rates
//	                   (DESIGN.md §13)
//	POST /v1/index/rescore
//	                   start a background lake re-score: every retained
//	                   table is re-typed on the current primary model and
//	                   the discovery index flips atomically on completion
//	                   (rescore.go, DESIGN.md §15)
//	GET  /v1/index/rescore
//	                   → re-score progress: cursor position, totals, state
//	POST /v1/models    load a candidate checkpoint for shadow scoring;
//	GET  /v1/models    with POST /v1/models/promote and /rollback these
//	                   drive the zero-downtime model lifecycle state
//	                   machine (lifecycle.go, DESIGN.md §14)
//	GET  /debug/pprof/* (and /debug/vars) when built WithDebug
//
// Request bodies are size-capped (http.MaxBytesReader); oversized payloads
// get 413 and malformed ones 400, both as JSON errors. Every request flows
// through the middleware chain: request-ID (honored or minted, echoed as
// X-Request-ID) → access log → panic recovery (JSON 500) → per-request
// deadline (WithRequestTimeout; expiry surfaces as 504) → bounded admission
// with load shedding (WithMaxInflight; overflow is shed with 429 +
// Retry-After) → per-route metrics. Plain-text error pages (including the
// mux's own 404/405) are rewritten into the same JSON error shape the
// handlers use.
//
// The request context is threaded end-to-end: prediction handlers call the
// engine's PredictCtx/PredictBatchCtx, so a client disconnect or deadline
// expiry aborts inference at the next stage boundary (DESIGN.md §9).
// Shutdown(ctx) turns the server away from traffic (new requests get 503,
// /v1/healthz reports draining), waits for in-flight requests to drain, and
// flushes a final metrics snapshot through the logger.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/discovery"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/obs/watch"
	"github.com/sematype/pythagoras/internal/par"
	"github.com/sematype/pythagoras/internal/rescore"
	"github.com/sematype/pythagoras/internal/table"
)

// Default SLO objectives for a server built without WithSLO: three nines of
// availability, and the same target for requests under 250ms — deliberately
// modest so an untuned deployment gets meaningful burn-rate signals instead
// of a permanently-blown budget.
const (
	DefaultSLOTarget  = 0.999
	DefaultSLOLatency = 250 * time.Millisecond
)

// Body-size caps for POST endpoints. The batch cap is larger because one
// request legitimately carries many tables.
const (
	maxBodyBytes      = 16 << 20
	maxBatchBodyBytes = 64 << 20
)

// statusClientClosedRequest is the nginx-convention status for a request
// whose client went away before the response was ready. The connection is
// usually gone by the time it is written; it exists for the access log and
// per-route error counters.
const statusClientClosedRequest = 499

// defaultShadowSeed seeds the deterministic shadow sampler when
// WithShadowSeed is not given. Any fixed value works — determinism, not
// unpredictability, is the point.
const defaultShadowSeed uint64 = 0x5DEECE66D

// Server wires the inference engine and index into an http.Handler.
type Server struct {
	// primary is the serving slot: every prediction request leases its
	// engine (leasePrimary). candidate, when non-nil, is a loaded model
	// shadowing live traffic; previous parks the demoted primary as the
	// rollback target. Slot writes serialize under lcMu; reads are plain
	// atomic loads on the hot path.
	primary   atomic.Pointer[modelSlot]
	candidate atomic.Pointer[modelSlot]
	previous  atomic.Pointer[modelSlot]
	lcMu      sync.Mutex

	// shadowWG tracks in-flight shadow-scoring goroutines so Shutdown (and
	// the leak-checking tests) can prove none outlive the server.
	shadowWG     sync.WaitGroup
	shadowSample float64
	shadowSeed   uint64
	shadowSeq    atomic.Uint64
	modelsDir    string
	primaryID    string

	// engineWorkers/engineMaxBatch clone the boot engine's configuration
	// onto every lifecycle-created engine.
	engineWorkers  int
	engineMaxBatch int
	drained        *obs.Counter // models.engines.drained — retired engines fully released

	// index is the discovery index behind snapshot-isolated swapping:
	// queries pin index.Current(), mutations dual-write through the holder,
	// and a completed lake re-score flips the pointer atomically
	// (DESIGN.md §15). lake retains every indexed table so a re-score can
	// re-type the corpus. rescore tracks the at-most-one background
	// re-score run (rescore.go).
	index   *discovery.SwapIndex
	lake    *rescore.Lake
	rescore rescoreState

	// rescoreCkpt/rescoreBatch configure re-score runs: the durable cursor
	// path ("" = in-memory only) and the engine batch size. rescoreBudget is
	// the shared dynamic concurrency gate every run scores under — the
	// watchdog's rescore-throttle action halves it while the SLO fast burn
	// fires and restores it on clear.
	rescoreCkpt   string
	rescoreBatch  int
	rescoreBudget *rescore.Budget

	// Anomaly watchdog (watch.go, DESIGN.md §16): rules over the signal
	// surfaces above, the flight recorder behind GET /v1/flight, and the
	// once-per-candidate auto-rollback latch (autoRolledBack, under lcMu).
	watchdog       *watch.Watchdog
	flights        *watch.FlightDir
	watchInterval  time.Duration
	watchNow       func() time.Time
	flightDir      string
	flightMax      int
	agreeMin       float64
	agreeWindow    time.Duration
	autoRolledBack *modelSlot

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the middleware chain
	metrics *obs.Registry
	logger  *log.Logger  // legacy key=value access-log + panic sink; nil silences both
	slog    *logz.Logger // structured JSON log (WithLogz); additive to logger
	debug   bool         // mounts /debug/pprof/* and /debug/vars

	// recorder samples per-request span trees into a ring buffer served at
	// GET /v1/traces. A default recorder (1% sampling, errored and >1s
	// traces always kept) is created unless WithTraceRecorder supplies one.
	recorder *obs.TraceRecorder

	// sloEng classifies every completed non-exempt request into good/bad SLO
	// events (the access-log middleware feeds it) and answers GET /v1/slo.
	// A default engine (DefaultSLOTarget/DefaultSLOLatency) is created
	// unless WithSLO supplies one.
	sloEng *slo.Engine

	// requestTimeout bounds end-to-end request processing, queue wait
	// included (0 = unbounded). Expiry surfaces as a JSON 504.
	requestTimeout time.Duration
	// maxInflight caps concurrently processed requests; the same number
	// again may wait in the admission queue, everything beyond is shed with
	// 429. 0 disables admission control.
	maxInflight int
	maxQueue    int
	sem         chan struct{} // counting semaphore, cap maxInflight
	queued      atomic.Int64  // requests waiting in the admission queue
	inflight    atomic.Int64  // admitted requests currently being served
	draining    atomic.Bool   // set by Shutdown: turn new work away
	shed        *obs.Counter  // http.shed — requests rejected with 429
	timeouts    *obs.Counter  // http.timeouts — requests expired with 504
	faults      *faultinject.Set

	idPrefix uint32 // per-process request-ID prefix
	reqSeq   atomic.Uint64
}

// Option configures a Server.
type Option func(*Server)

// WithMetrics supplies the metrics registry. Without it the server adopts
// the engine's registry, or creates its own — a server always serves
// /v1/metrics.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithLogger enables the legacy key=value access log and panic reporting.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithLogz enables structured JSON logging: one object per request with the
// request ID and trace ID as first-class fields (joinable against
// /v1/traces), plus panic and lifecycle events. Additive to WithLogger —
// both sinks receive events when both are configured.
func WithLogz(l *logz.Logger) Option {
	return func(s *Server) { s.slog = l }
}

// WithTraceRecorder supplies the trace recorder behind GET /v1/traces
// (sampling rate, slow threshold and ring size are the recorder's). Without
// this option the server builds a default recorder: 1% sampling, with
// errored traces and traces over one second always kept.
func WithTraceRecorder(rec *obs.TraceRecorder) Option {
	return func(s *Server) { s.recorder = rec }
}

// WithDebug mounts the pprof handlers under /debug/pprof/ and expvar under
// /debug/vars. Off by default: profiling endpoints expose internals and
// cost CPU, so production turns them on deliberately (`serve -debug`).
func WithDebug(debug bool) Option {
	return func(s *Server) { s.debug = debug }
}

// WithRequestTimeout bounds each request's end-to-end processing time,
// admission-queue wait included. An expired deadline aborts inference at
// the next stage boundary and returns a JSON 504. 0 (the default) disables
// the per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithMaxInflight caps how many requests are processed concurrently. Up to
// the same number again wait in a bounded admission queue (the wait counts
// against the request deadline); anything beyond that is shed immediately
// with 429 and a Retry-After header. /v1/healthz, /v1/metrics and /debug
// bypass admission so the instance stays observable under overload.
// 0 (the default) disables admission control.
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithSLO supplies the SLO engine behind GET /v1/slo (objectives, budget
// windows, and — for tests — the clock are the engine's). Without this
// option the server builds a default engine from DefaultSLOTarget and
// DefaultSLOLatency; `serve -slo-target -slo-latency-ms` configures it.
func WithSLO(e *slo.Engine) Option {
	return func(s *Server) { s.sloEng = e }
}

// WithFaults arms fault-injection points on the serving path — test support
// for the chaos suite, never set in production (nil disables, the default).
func WithFaults(fs *faultinject.Set) Option {
	return func(s *Server) { s.faults = fs }
}

// WithShadowSample sets the fraction of live predict / predict-batch
// traffic double-scored on a shadowing candidate (lifecycle.go), in [0, 1].
// Sampling is deterministic from the shadow seed — the same request
// sequence samples identically on every run. Default 1: every request is
// shadow-scored while a candidate is loaded (`serve -shadow-sample` tunes
// it down for deployments where double-scoring everything is too dear).
func WithShadowSample(f float64) Option {
	return func(s *Server) { s.shadowSample = f }
}

// WithShadowSeed overrides the deterministic shadow sampler's seed —
// test support for exercising different sampled subsets.
func WithShadowSeed(seed uint64) Option {
	return func(s *Server) { s.shadowSeed = seed }
}

// WithModelsDir confines POST /v1/models checkpoint paths to one directory:
// requests must name a relative path inside it. Without this option (the
// default) any path the process can read is accepted.
func WithModelsDir(dir string) Option {
	return func(s *Server) { s.modelsDir = dir }
}

// WithModelID names the boot-time model in lifecycle telemetry and
// GET /v1/models. Default "boot".
func WithModelID(id string) Option {
	return func(s *Server) { s.primaryID = id }
}

// WithRescoreCheckpoint sets the durable cursor path for lake re-score runs
// (POST /v1/index/rescore): progress checkpoints land there after every
// committed batch, and a restarted process resumes from it. Empty (the
// default) keeps the cursor in memory only — a crash restarts the scan.
func WithRescoreCheckpoint(path string) Option {
	return func(s *Server) { s.rescoreCkpt = path }
}

// WithRescoreBatch sets how many tables a re-score scores per engine batch
// (values < 1 keep the default 16).
func WithRescoreBatch(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.rescoreBatch = n
		}
	}
}

// New builds a server around a trained model. minConfidence filters what
// enters the discovery index.
func New(m *core.Model, minConfidence float64, opts ...Option) *Server {
	return NewWithEngine(infer.New(m), minConfidence, opts...)
}

// NewWithEngine builds a server around a pre-configured inference engine
// (custom worker counts, batch bounds). The server and engine share one
// metrics registry: the server's (WithMetrics) if the engine has none yet,
// otherwise the engine's.
func NewWithEngine(eng *infer.Engine, minConfidence float64, opts ...Option) *Server {
	s := &Server{
		index:        discovery.NewSwapIndex(minConfidence),
		lake:         rescore.NewLake(),
		rescoreBatch: 16,
		mux:          http.NewServeMux(),
		idPrefix:     newIDPrefix(),
		shadowSample: 1,
		shadowSeed:   defaultShadowSeed,
		primaryID:    "boot",
		agreeMin:     DefaultShadowAgreementMin,
		agreeWindow:  DefaultShadowAgreementWindow,
	}
	for _, o := range opts {
		o(s)
	}
	if s.metrics == nil {
		s.metrics = eng.Metrics()
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	eng.EnableMetrics(s.metrics) // no-op if the engine brought its own

	if s.maxInflight > 0 {
		s.sem = make(chan struct{}, s.maxInflight)
		if s.maxQueue <= 0 {
			s.maxQueue = s.maxInflight
		}
	}
	if s.recorder == nil {
		s.recorder = obs.NewTraceRecorder(obs.TraceConfig{
			SampleRate:    0.01,
			SlowThreshold: time.Second,
		})
	}
	if s.sloEng == nil {
		s.sloEng = slo.New(slo.DefaultObjectives(DefaultSLOTarget, DefaultSLOLatency))
	}
	s.sloEng.Register(s.metrics)
	s.recorder.Register(s.metrics)
	obs.RegisterRuntimeMetrics(s.metrics)
	par.RegisterMetrics(s.metrics)
	if d := eng.Drift(); d != nil {
		d.Register(s.metrics)
	}

	// The boot engine becomes the initial primary slot of the model
	// lifecycle state machine (lifecycle.go); its configuration is the
	// template for every engine a later load/promote/rollback builds.
	s.engineWorkers = eng.Workers()
	s.engineMaxBatch = eng.MaxBatch()
	s.drained = s.metrics.Counter("models.engines.drained")
	boot := &modelSlot{
		id:       s.primaryID,
		model:    eng.Model(),
		engine:   eng,
		drift:    eng.Drift(),
		loadedAt: time.Now(),
		mx:       s.newSlotMetrics(s.primaryID),
	}
	boot.drift.RegisterLabeled(s.metrics, "model", boot.id) // nil-safe
	s.primary.Store(boot)

	s.shed = s.metrics.Counter("http.shed")
	s.timeouts = s.metrics.Counter("http.timeouts")
	s.metrics.GaugeFunc("http.inflight", func() float64 { return float64(s.inflight.Load()) })
	s.metrics.GaugeFunc("http.queue.depth", func() float64 { return float64(s.queued.Load()) })
	s.metrics.GaugeFunc("http.draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})

	s.route("POST /v1/predict", s.handlePredict)
	s.route("POST /v1/predict-batch", s.handlePredictBatch)
	s.route("POST /v1/index", s.handleIndex)
	s.route("GET /v1/search", s.handleSearch)
	s.route("GET /v1/join", s.handleJoin)
	s.route("GET /v1/union", s.handleUnion)
	s.route("GET /v1/types", s.handleTypes)
	s.route("GET /v1/healthz", s.handleHealthz)
	s.route("GET /v1/readyz", s.handleReadyz)
	s.route("GET /v1/metrics", s.handleMetrics)
	s.route("GET /v1/traces", s.handleTraces)
	s.route("GET /v1/slo", s.handleSLO)
	s.route("POST /v1/index/rescore", s.handleRescoreStart)
	s.route("GET /v1/index/rescore", s.handleRescoreStatus)
	s.route("POST /v1/models", s.handleModelsLoad)
	s.route("GET /v1/models", s.handleModelsStatus)
	s.route("POST /v1/models/promote", s.handleModelsPromote)
	s.route("POST /v1/models/rollback", s.handleModelsRollback)
	s.route("GET /v1/alerts", s.handleAlerts)
	s.route("GET /v1/flight", s.handleFlightList)
	s.route("GET /v1/flight/{id}", s.handleFlightGet)
	if s.debug {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		s.mux.Handle("GET /debug/vars", expvar.Handler())
		s.metrics.PublishExpvar("pythagoras")
	}

	// The re-score budget exists before any run so the watchdog's throttle
	// action has a stable target to halve and restore.
	s.rescoreBudget = rescore.NewBudget(2)
	s.initWatchdog()

	s.handler = s.withRequestID(s.withAccessLog(s.withRecover(s.withDeadline(s.withAdmission(s.mux)))))
	return s
}

// Shutdown gracefully stops the server's request processing: it stops
// accepting work (new requests are rejected with 503 and /v1/healthz flips
// to draining — load balancers pull the instance), waits for admitted
// in-flight requests to drain, and flushes a final metrics snapshot through
// the logger. It returns ctx's error if the drain does not finish in time,
// with requests still running; callers pair it with http.Server.Shutdown,
// which closes the listeners. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// The watchdog stops first: a tick landing mid-teardown would act on
	// subsystems being dismantled. Stop waits the loop out (no-op when the
	// loop was never started).
	s.watchdog.Stop()
	// A background lake re-score must not outlive the server: cancel it
	// (the durable cursor survives for the next process to resume) and,
	// after the request drain below, wait for its goroutine to unwind.
	s.cancelRescore("shutdown")
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: shutdown aborted with %d requests in flight: %w",
				s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	// Requests are drained; shadow-scoring goroutines they spawned may still
	// be running against the candidate. Wait those out too — a shadow score
	// observed after Shutdown returns would race test teardown and registry
	// reads.
	shadowDone := make(chan struct{})
	go func() {
		s.shadowWG.Wait()
		close(shadowDone)
	}()
	select {
	case <-shadowDone:
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown aborted with shadow scoring in flight: %w", ctx.Err())
	}
	if err := s.awaitRescore(ctx); err != nil {
		return fmt.Errorf("server: shutdown aborted with a lake re-score in flight: %w", err)
	}
	if s.logger != nil {
		if raw, err := json.Marshal(s.metrics.Snapshot()); err == nil {
			s.logger.Printf("shutdown: drained, final metrics %s", raw)
		}
	}
	s.slog.Log(logz.Info, "shutdown drained",
		"traces_captured", s.recorder.Captured())
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// model returns the current primary slot's model.
func (s *Server) model() *core.Model {
	if slot := s.primary.Load(); slot != nil {
		return slot.model
	}
	return nil
}

// modelTypes returns the primary model's vocabulary size, 0 with no model.
func (s *Server) modelTypes() int {
	if m := s.model(); m != nil {
		return len(m.Types())
	}
	return 0
}

// primaryEngine returns the current primary slot's engine — introspection
// for tests and callers that held the boot engine before lifecycle moves.
func (s *Server) primaryEngine() *infer.Engine {
	if slot := s.primary.Load(); slot != nil {
		return slot.engine
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Index exposes the currently served discovery index snapshot. A completed
// lake re-score replaces it wholesale — callers issuing several related
// queries should pin one Index() result and run them all against it.
func (s *Server) Index() *discovery.TypeIndex { return s.index.Current() }

// Lake exposes the retained-table store a re-score walks.
func (s *Server) Lake() *rescore.Lake { return s.lake }

// Metrics exposes the server's metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Recorder exposes the server's trace recorder.
func (s *Server) Recorder() *obs.TraceRecorder { return s.recorder }

// SLO exposes the server's SLO engine.
func (s *Server) SLO() *slo.Engine { return s.sloEng }

// --- wire types ---

// ColumnRequest is one column of a prediction request. Values are sent as
// strings; numeric columns are detected the same way the CSV loader does.
type ColumnRequest struct {
	Header string   `json:"header"`
	Values []string `json:"values"`
}

// TableRequest is the body of /v1/predict and /v1/index.
type TableRequest struct {
	ID      string          `json:"id,omitempty"`
	Name    string          `json:"name"`
	Columns []ColumnRequest `json:"columns"`
}

// ColumnResponse is one predicted column.
type ColumnResponse struct {
	Header     string  `json:"header"`
	Kind       string  `json:"kind"`
	Type       string  `json:"type"`
	Confidence float64 `json:"confidence"`
}

// PredictResponse is the body returned by /v1/predict and /v1/index.
type PredictResponse struct {
	Table   string           `json:"table"`
	Columns []ColumnResponse `json:"columns"`
	Indexed bool             `json:"indexed,omitempty"`
}

// BatchRequest is the body of /v1/predict-batch.
type BatchRequest struct {
	Tables []TableRequest `json:"tables"`
}

// BatchResponse is the body returned by /v1/predict-batch; Results[i]
// corresponds to Tables[i] of the request.
type BatchResponse struct {
	Results []PredictResponse `json:"results"`
}

// errorResponse is the one JSON error shape every path emits. TraceID, when
// the request carries a trace (route-opened root span, or an admission
// rejection's reject span), joins the error body to GET /v1/traces — a
// client holding a 429/504 body can hand support the exact trace.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...)}
	// The whole middleware chain below the access log sees the respWriter;
	// whatever span owner set its trace ID rides along on every error body.
	if rw, ok := w.(*respWriter); ok {
		resp.TraceID = rw.traceID
	}
	writeJSON(w, status, resp)
}

// toTable converts a request into the internal table model, inferring
// column kinds from the values.
func (tr *TableRequest) toTable() (*table.Table, error) {
	if len(tr.Columns) == 0 {
		return nil, fmt.Errorf("table needs at least one column")
	}
	t := &table.Table{Name: tr.Name, ID: tr.ID}
	if t.Name == "" {
		t.Name = "untitled"
	}
	if t.ID == "" {
		t.ID = "adhoc"
	}
	rows := len(tr.Columns[0].Values)
	for i, c := range tr.Columns {
		if len(c.Values) != rows {
			return nil, fmt.Errorf("column %d has %d values, want %d", i, len(c.Values), rows)
		}
		col := &table.Column{Header: c.Header}
		numeric := len(c.Values) > 0
		nums := make([]float64, 0, len(c.Values))
		for _, v := range c.Values {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				numeric = false
				break
			}
			nums = append(nums, f)
		}
		if numeric {
			col.Kind = table.KindNumeric
			col.NumValues = nums
		} else {
			col.Kind = table.KindText
			col.TextValues = c.Values
		}
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// toResponse converts engine predictions for t into the wire format.
func toResponse(t *table.Table, preds []core.ColumnPrediction) *PredictResponse {
	resp := &PredictResponse{Table: t.ID}
	for _, p := range preds {
		resp.Columns = append(resp.Columns, ColumnResponse{
			Header: p.Header, Kind: p.Kind.String(), Type: p.Type, Confidence: p.Confidence,
		})
	}
	return resp
}

// writeInferErr maps an aborted inference call onto the wire: an expired
// deadline is the server's fault (504, counted under http.timeouts), a
// vanished client gets the conventional 499 (the connection is usually
// already gone — the status feeds the access log and error counters), and
// anything else (injected faults included) is a 500.
func (s *Server) writeInferErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeErr(w, http.StatusGatewayTimeout, "request timed out after %s", s.requestTimeout)
	case errors.Is(err, context.Canceled):
		writeErr(w, statusClientClosedRequest, "client closed request")
	default:
		writeErr(w, http.StatusInternalServerError, "inference failed: %v", err)
	}
}

func (s *Server) predict(ctx context.Context, tr *TableRequest) (*table.Table, []core.ColumnPrediction, error) {
	t, err := tr.toTable()
	if err != nil {
		return nil, nil, err
	}
	slot, ok := s.leasePrimary()
	if !ok {
		return nil, nil, errNoModel
	}
	defer slot.engine.Release()
	preds, err := slot.engine.PredictCtx(ctx, t)
	if err != nil {
		return nil, nil, err
	}
	return t, preds, nil
}

// decodeJSONBody decodes a size-capped JSON body into v, writing the JSON
// error response itself on failure: 413 when the body exceeds limit, 400
// for malformed, unknown-field, or trailing-garbage payloads. The body must
// be exactly one JSON value — `{...}garbage` is rejected, not silently
// truncated (the second Decode must hit io.EOF).
func decodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, http.StatusBadRequest, "invalid request body: trailing data after JSON value")
		return false
	}
	return true
}

func decodeTableRequest(w http.ResponseWriter, r *http.Request) (*TableRequest, bool) {
	var tr TableRequest
	if !decodeJSONBody(w, r, maxBodyBytes, &tr) {
		return nil, false
	}
	return &tr, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// The route middleware already opened this request's root span
	// ("predict") on the context; the stage spans below nest under it, so
	// the recorded histogram paths are span.predict.parse / .infer.
	ctx := r.Context()
	_, parse := obs.StartSpan(ctx, "parse")
	tr, ok := decodeTableRequest(w, r)
	if !ok {
		parse.End()
		return
	}
	t, err := tr.toTable()
	parse.End()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, inferSp := obs.StartSpan(ctx, "infer")
	slot, ok := s.leasePrimary()
	if !ok {
		inferSp.End()
		writeErr(w, http.StatusServiceUnavailable, "%v", errNoModel)
		return
	}
	preds, err := slot.engine.PredictCtx(ctx, t)
	slot.engine.Release()
	inferSp.End()
	if err != nil {
		s.writeInferErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(t, preds))
	// Strictly after the response is written: shadow-score the request on a
	// shadowing candidate, off this goroutine. The primary response bytes
	// are final — shadowing cannot perturb them (bit-identity test).
	s.maybeShadow([]*table.Table{t}, [][]core.ColumnPrediction{preds})
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context() // root span "predict-batch" opened by the route middleware
	_, parse := obs.StartSpan(ctx, "parse")
	var br BatchRequest
	if !decodeJSONBody(w, r, maxBatchBodyBytes, &br) {
		parse.End()
		return
	}
	if len(br.Tables) == 0 {
		parse.End()
		writeErr(w, http.StatusBadRequest, "batch needs at least one table")
		return
	}
	tables := make([]*table.Table, len(br.Tables))
	for i := range br.Tables {
		t, err := br.Tables[i].toTable()
		if err != nil {
			parse.End()
			writeErr(w, http.StatusBadRequest, "table %d: %v", i, err)
			return
		}
		tables[i] = t
	}
	parse.End()

	_, inferSp := obs.StartSpan(ctx, "infer")
	slot, ok := s.leasePrimary()
	if !ok {
		inferSp.End()
		writeErr(w, http.StatusServiceUnavailable, "%v", errNoModel)
		return
	}
	batch, err := slot.engine.PredictBatchCtx(ctx, tables)
	slot.engine.Release()
	inferSp.End()
	if err != nil {
		s.writeInferErr(w, err)
		return
	}
	resp := BatchResponse{Results: make([]PredictResponse, len(batch))}
	for i, preds := range batch {
		resp.Results[i] = *toResponse(tables[i], preds)
	}
	writeJSON(w, http.StatusOK, resp)
	s.maybeShadow(tables, batch) // after the response bytes are final
}

// handleMetrics serves a point-in-time JSON snapshot of the registry —
// every counter, gauge (cache stats included), per-stage and per-route
// histogram with quantile estimates. The shape matches what PublishExpvar
// exposes under /debug/vars. With ?format=prom it renders the Prometheus
// text exposition format instead (sorted families, cumulative buckets) for
// scrape targets.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// TracesResponse is the body of GET /v1/traces.
type TracesResponse struct {
	Count  int         `json:"count"`
	Traces []obs.Trace `json:"traces"`
}

// handleTraces serves the trace ring buffer, newest first. Query filters:
//
//	?min_ms=50   traces at least 50ms long
//	?route=predict (or /v1/predict) traces of one route
//	?error=1     errored traces only
//	?limit=20    cap the result count
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var f obs.TraceFilter
	q := r.URL.Query()
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, "invalid min_ms %q", v)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("route"); v != "" {
		f.Route = strings.TrimPrefix(v, "/v1/")
	}
	if v := q.Get("error"); v != "" {
		f.ErrorOnly = v == "1" || strings.EqualFold(v, "true")
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		f.Limit = n
	}
	traces := s.recorder.Traces(f)
	writeJSON(w, http.StatusOK, TracesResponse{Count: len(traces), Traces: traces})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	tr, ok := decodeTableRequest(w, r)
	if !ok {
		return
	}
	if tr.ID == "" {
		writeErr(w, http.StatusBadRequest, "indexing requires a table id")
		return
	}
	t, preds, err := s.predict(r.Context(), tr)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.writeInferErr(w, err)
			return
		}
		if errors.Is(err, errNoModel) {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One inference pass serves both the response and the index update. The
	// lake retains the table itself so a model upgrade can re-type it
	// (POST /v1/index/rescore); the SwapIndex dual-writes into any shadow
	// build in progress so a concurrent re-score cannot lose this add.
	s.lake.Put(t)
	s.index.AddPredictions(t, preds)
	resp := toResponse(t, preds)
	resp.Indexed = true
	writeJSON(w, http.StatusOK, resp)
}

// SearchResponse is the body of /v1/search.
type SearchResponse struct {
	Types  []string `json:"types"`
	Tables []string `json:"tables"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	types := r.URL.Query()["type"]
	if len(types) == 0 {
		writeErr(w, http.StatusBadRequest, "at least one ?type= parameter required")
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{
		Types:  types,
		Tables: s.index.Current().TablesWithAll(types...),
	})
}

func (s *Server) handleTypes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"indexed":    s.index.Current().Types(),
		"vocabulary": s.modelTypes(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.index.Current().Stats()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Load balancers poll this endpoint: a draining instance must fail
		// its health check so traffic moves away before the listener closes.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"types":          s.modelTypes(),
		"indexed_tables": st.Tables,
		"indexed_cols":   st.Columns,
	})
}

// handleReadyz is the readiness probe, distinct from the liveness probe at
// /v1/healthz: ready means a primary model is serving and the server is not
// draining — i.e. a request sent now would be admitted rather than turned
// away. Load balancers gate traffic on it, and loadgen polls it before
// opening a measured window so warmup never includes a half-started server.
// Lifecycle transitions never pass through an unready state: promote and
// rollback swap the primary pointer without ever storing nil, and a failed
// candidate load touches nothing but the error response (both are
// regression-tested) — readiness only drops when the server drains.
// Admission-exempt, like the other probe endpoints.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m := s.model()
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "status": "draining",
		})
	case m == nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "status": "no model loaded",
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"ready": true, "status": "ready", "types": len(m.Types()),
		})
	}
}

// handleSLO serves the SLO engine's status: every objective with its
// budget-window counts, remaining error budget, and the four burn-rate
// windows with the fast/slow alert-pair states. The same numbers are
// exported as gauges through /v1/metrics (slo.* families); this endpoint is
// the structured report an operator or the load harness reads directly.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sloEng.Status())
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	st := r.URL.Query().Get("type")
	if st == "" {
		writeErr(w, http.StatusBadRequest, "?type= parameter required")
		return
	}
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid limit %q", q)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"type":       st,
		"candidates": s.index.Current().JoinCandidates(st, limit),
	})
}

func (s *Server) handleUnion(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("table")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "?table= parameter required")
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid k %q", q)
			return
		}
		k = n
	}
	cands, err := s.index.Current().UnionCandidates(id, k)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":      id,
		"candidates": cands,
	})
}
