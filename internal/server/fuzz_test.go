package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

// FuzzTableRequestDecode drives arbitrary bytes through the exact request
// path a /v1/predict body takes before inference: decodeJSONBody (strict
// fields, size cap, trailing-garbage rejection) followed by toTable kind
// inference. It asserts the decoder's contract rather than specific inputs:
// rejections are always well-formed JSON 4xx errors, and any accepted body
// yields a structurally sound table.
func FuzzTableRequestDecode(f *testing.F) {
	valid, _ := json.Marshal(sampleRequest("t1"))
	f.Add(valid)
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["1","2"]}]}`))
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["1"]},{"header":"g","values":["a","b"]}]}`))
	f.Add([]byte(`{"name":"n","columns":[]}`))
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["x"]}]}garbage`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		var tr TableRequest
		if !decodeJSONBody(rec, req, maxBodyBytes, &tr) {
			// Every rejection must already have written a JSON error with a
			// client-error status.
			if rec.Code != http.StatusBadRequest && rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("rejection wrote status %d", rec.Code)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("rejection body is not a JSON error: %q", rec.Body)
			}
			return
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("accepting decode wrote a response: %q", rec.Body)
		}
		tbl, err := tr.toTable()
		if err != nil {
			return // semantic rejection (no columns, ragged lengths) is fine
		}
		if len(tbl.Columns) != len(tr.Columns) {
			t.Fatalf("toTable dropped columns: %d != %d", len(tbl.Columns), len(tr.Columns))
		}
		rows := tbl.NumRows()
		for i, c := range tbl.Columns {
			if c.Len() != rows {
				t.Fatalf("col %d: %d rows, table has %d", i, c.Len(), rows)
			}
			switch c.Kind {
			case table.KindNumeric:
				if len(c.TextValues) != 0 {
					t.Fatalf("col %d: numeric column holds text values", i)
				}
			case table.KindText:
				if len(c.NumValues) != 0 {
					t.Fatalf("col %d: text column holds numeric values", i)
				}
			default:
				t.Fatalf("col %d: unknown kind %v", i, c.Kind)
			}
			c.SemanticType = "t"
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("accepted request fails table validation: %v", err)
		}
	})
}

// FuzzModelsRequestDecode drives arbitrary bytes through the POST /v1/models
// control-plane decode — the same strict decodeJSONBody contract as the data
// plane, with the smaller body cap — and, for any accepted request, through
// the models-dir path confinement. The invariants: rejections are well-formed
// JSON client errors, and no accepted path ever resolves outside a configured
// models directory.
func FuzzModelsRequestDecode(f *testing.F) {
	f.Add([]byte(`{"id":"v2","path":"candidate.bin"}`))
	f.Add([]byte(`{"path":"models/v2.bin"}`))
	f.Add([]byte(`{"path":"/etc/passwd"}`))
	f.Add([]byte(`{"path":"../../escape.bin"}`))
	f.Add([]byte(`{"path":""}`))
	f.Add([]byte(`{"id":"x"}`))
	f.Add([]byte(`{"id":"v2","path":"a.bin"}trailing`))
	f.Add([]byte(`{"unknown":"field"}`))
	f.Add([]byte(`{"path":"a.bin","path":"b.bin"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/models", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		var mr ModelsRequest
		if !decodeJSONBody(rec, req, maxModelsBodyBytes, &mr) {
			if rec.Code != http.StatusBadRequest && rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("rejection wrote status %d", rec.Code)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("rejection body is not a JSON error: %q", rec.Body)
			}
			return
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("accepting decode wrote a response: %q", rec.Body)
		}
		// Path confinement: whatever decoded, a confined server must never
		// resolve a path outside its models directory.
		confined := &Server{modelsDir: filepath.Join("some", "models")}
		resolved, err := confined.resolveModelPath(mr.Path)
		if err != nil {
			return // rejected before touching the filesystem — fine
		}
		rel, relErr := filepath.Rel(confined.modelsDir, resolved)
		if relErr != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) || filepath.IsAbs(rel) {
			t.Fatalf("path %q resolved outside the models dir: %q", mr.Path, resolved)
		}
		// Unconfined resolution only rejects empty paths.
		open := &Server{}
		if _, err := open.resolveModelPath(mr.Path); (err != nil) != (mr.Path == "") {
			t.Fatalf("unconfined resolve(%q) err=%v", mr.Path, err)
		}
	})
}
