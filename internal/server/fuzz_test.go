package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/sematype/pythagoras/internal/table"
)

// FuzzTableRequestDecode drives arbitrary bytes through the exact request
// path a /v1/predict body takes before inference: decodeJSONBody (strict
// fields, size cap, trailing-garbage rejection) followed by toTable kind
// inference. It asserts the decoder's contract rather than specific inputs:
// rejections are always well-formed JSON 4xx errors, and any accepted body
// yields a structurally sound table.
func FuzzTableRequestDecode(f *testing.F) {
	valid, _ := json.Marshal(sampleRequest("t1"))
	f.Add(valid)
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["1","2"]}]}`))
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["1"]},{"header":"g","values":["a","b"]}]}`))
	f.Add([]byte(`{"name":"n","columns":[]}`))
	f.Add([]byte(`{"name":"n","columns":[{"header":"h","values":["x"]}]}garbage`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		var tr TableRequest
		if !decodeJSONBody(rec, req, maxBodyBytes, &tr) {
			// Every rejection must already have written a JSON error with a
			// client-error status.
			if rec.Code != http.StatusBadRequest && rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("rejection wrote status %d", rec.Code)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("rejection body is not a JSON error: %q", rec.Body)
			}
			return
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("accepting decode wrote a response: %q", rec.Body)
		}
		tbl, err := tr.toTable()
		if err != nil {
			return // semantic rejection (no columns, ragged lengths) is fine
		}
		if len(tbl.Columns) != len(tr.Columns) {
			t.Fatalf("toTable dropped columns: %d != %d", len(tbl.Columns), len(tr.Columns))
		}
		rows := tbl.NumRows()
		for i, c := range tbl.Columns {
			if c.Len() != rows {
				t.Fatalf("col %d: %d rows, table has %d", i, c.Len(), rows)
			}
			switch c.Kind {
			case table.KindNumeric:
				if len(c.TextValues) != 0 {
					t.Fatalf("col %d: numeric column holds text values", i)
				}
			case table.KindText:
				if len(c.NumValues) != 0 {
					t.Fatalf("col %d: text column holds numeric values", i)
				}
			default:
				t.Fatalf("col %d: unknown kind %v", i, c.Kind)
			}
			c.SemanticType = "t"
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("accepted request fails table validation: %v", err)
		}
	})
}
