package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/lm"
)

// trainedServer builds a quickly trained model behind the handler.
func trainedServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 22, Seed: 11, MinRows: 5, MaxRows: 8, WeakNameProb: 0.1, Domains: 2,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 128, Buckets: 1 << 12, Seed: 7})
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 3
	cfg.Patience = 3
	m, err := core.Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, 0, opts...)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func sampleRequest(id string) TableRequest {
	return TableRequest{
		ID:   id,
		Name: "NBA Player Stats",
		Columns: []ColumnRequest{
			{Header: "Player", Values: []string{"Lebron James", "Myles Turner"}},
			{Header: "PPG", Values: []string{"28.1", "15.2"}},
		},
	}
}

func TestPredictEndpoint(t *testing.T) {
	s := trainedServer(t)
	rec := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Columns) != 2 {
		t.Fatalf("columns = %d", len(resp.Columns))
	}
	kinds := map[string]string{}
	for _, c := range resp.Columns {
		if c.Type == "" || c.Confidence <= 0 {
			t.Fatalf("bad column response: %+v", c)
		}
		kinds[c.Header] = c.Kind
	}
	if kinds["Player"] != "text" || kinds["PPG"] != "numeric" {
		t.Fatalf("kind inference wrong: %v", kinds)
	}
}

func TestPredictRejectsBadBodies(t *testing.T) {
	s := trainedServer(t)
	cases := []string{
		`{`,                       // malformed
		`{"name":"x"}`,            // no columns
		`{"unknown_field": true}`, // unknown field
		`{"name":"x","columns":[{"header":"a","values":["1"]},{"header":"b","values":["1","2"]}]}`, // ragged
	}
	for _, body := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d", body, rec.Code)
		}
	}
}

func TestPredictMethodNotAllowed(t *testing.T) {
	s := trainedServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d", rec.Code)
	}
}

func TestIndexAndSearchFlow(t *testing.T) {
	s := trainedServer(t)
	// Index two tables.
	for _, id := range []string{"t1", "t2"} {
		rec := postJSON(t, s, "/v1/index", sampleRequest(id))
		if rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d: %s", id, rec.Code, rec.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Indexed {
			t.Fatal("response must confirm indexing")
		}
	}
	if got := s.Index().Stats().Tables; got != 2 {
		t.Fatalf("indexed tables = %d", got)
	}

	// Search for whatever type t1's numeric column got.
	var probe PredictResponse
	rec := postJSON(t, s, "/v1/predict", sampleRequest("probe"))
	if err := json.Unmarshal(rec.Body.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	numType := ""
	for _, c := range probe.Columns {
		if c.Kind == "numeric" {
			numType = c.Type
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/search?type="+numType, nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("search = %d", rec2.Code)
	}
	var sr SearchResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Tables) != 2 {
		t.Fatalf("search hits = %v (type %s)", sr.Tables, numType)
	}
}

func TestIndexRequiresID(t *testing.T) {
	s := trainedServer(t)
	rec := postJSON(t, s, "/v1/index", sampleRequest(""))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("index without id = %d", rec.Code)
	}
}

func TestSearchRequiresType(t *testing.T) {
	s := trainedServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/search", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("search without type = %d", rec.Code)
	}
}

func TestTypesAndHealthz(t *testing.T) {
	s := trainedServer(t)
	for _, path := range []string{"/v1/types", "/v1/healthz"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

func TestJoinAndUnionEndpoints(t *testing.T) {
	s := trainedServer(t)
	for _, id := range []string{"t1", "t2", "t3"} {
		rec := postJSON(t, s, "/v1/index", sampleRequest(id))
		if rec.Code != http.StatusOK {
			t.Fatalf("index %s = %d", id, rec.Code)
		}
	}
	// discover the numeric type assigned by the model
	var probe PredictResponse
	rec := postJSON(t, s, "/v1/predict", sampleRequest("probe"))
	if err := json.Unmarshal(rec.Body.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	numType := ""
	for _, c := range probe.Columns {
		if c.Kind == "numeric" {
			numType = c.Type
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/join?type="+numType+"&limit=2", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("join = %d: %s", rec2.Code, rec2.Body)
	}
	var joinBody struct {
		Candidates []map[string]any `json:"candidates"`
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &joinBody); err != nil {
		t.Fatal(err)
	}
	if len(joinBody.Candidates) != 2 {
		t.Fatalf("join candidates = %d, want limit 2", len(joinBody.Candidates))
	}
	// Candidates identify columns by position, not just header — duplicate
	// headers are routine in scraped lakes.
	for _, c := range joinBody.Candidates {
		for _, key := range []string{"LeftColIndex", "RightColIndex"} {
			if _, ok := c[key]; !ok {
				t.Fatalf("join candidate missing %s: %v", key, c)
			}
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/union?table=t1&k=5", nil)
	rec3 := httptest.NewRecorder()
	s.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("union = %d: %s", rec3.Code, rec3.Body)
	}
	var unionBody struct {
		Candidates []map[string]any `json:"candidates"`
	}
	if err := json.Unmarshal(rec3.Body.Bytes(), &unionBody); err != nil {
		t.Fatal(err)
	}
	if len(unionBody.Candidates) != 2 { // t2, t3 are identical tables
		t.Fatalf("union candidates = %d, want 2", len(unionBody.Candidates))
	}
}

func TestJoinUnionValidation(t *testing.T) {
	s := trainedServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/join", http.StatusBadRequest},
		{"/v1/join?type=x&limit=bogus", http.StatusBadRequest},
		{"/v1/union", http.StatusBadRequest},
		{"/v1/union?table=ghost", http.StatusNotFound},
		{"/v1/union?table=x&k=-1", http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodGet, c.path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Fatalf("%s = %d, want %d", c.path, rec.Code, c.want)
		}
	}
}
