package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/lm"
)

// errInjected is the generic fault for 500-mapping tests.
var errInjected = errors.New("injected handler fault")

// The chaos suite (DESIGN.md §9) proves the serving path survives its
// production failure modes: bursts over capacity, clients vanishing
// mid-batch, deadlines expiring inside a stage, and shutdown while busy —
// all with deterministic fault injection, all run under -race by `make
// check`.

// chaosModel trains one small model shared by every chaos test.
var (
	chaosOnce sync.Once
	chaosMdl  *core.Model
)

// chaosModel returns the one small model shared by the chaos and lifecycle
// suites, training it on first use.
func chaosModel(t *testing.T) *core.Model {
	t.Helper()
	chaosOnce.Do(func() {
		c := data.GenerateSportsTables(data.SportsConfig{
			NumTables: 22, Seed: 11, MinRows: 5, MaxRows: 8, WeakNameProb: 0.1, Domains: 2,
		})
		enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 128, Buckets: 1 << 12, Seed: 7})
		cfg := core.DefaultConfig(enc)
		cfg.Epochs = 3
		cfg.Patience = 3
		m, err := core.Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
		if err != nil {
			panic(err)
		}
		chaosMdl = m
	})
	if chaosMdl == nil {
		t.Fatal("chaos model training failed")
	}
	return chaosMdl
}

// chaosServer builds a server around a fault-armed engine. engFaults fires
// inside inference stages, srvFaults at request admission.
func chaosServer(t *testing.T, engFaults, srvFaults *faultinject.Set, opts ...Option) *Server {
	t.Helper()
	eng := infer.New(chaosModel(t), infer.WithWorkers(2), infer.WithFaults(engFaults))
	opts = append(opts, WithFaults(srvFaults))
	return NewWithEngine(eng, 0, opts...)
}

func batchBody(tables int) BatchRequest {
	br := BatchRequest{}
	for i := 0; i < tables; i++ {
		br.Tables = append(br.Tables, sampleRequest(""))
	}
	return br
}

// settleGoroutines waits for the goroutine count to return to base+slack.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBurstShedsCleanly is the acceptance scenario: a burst of 4× the
// inflight cap of concurrent predict-batch requests must resolve entirely
// into 200s (admitted, possibly after queueing) and 429s (shed) — no
// timeouts, no errors, no goroutine leak — with the shed counter matching
// the 429s and Retry-After set on every rejection.
func TestBurstShedsCleanly(t *testing.T) {
	const maxInflight = 2
	const burst = 4 * maxInflight
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(50*time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithMaxInflight(maxInflight))
	base := runtime.NumGoroutine()

	raw, _ := json.Marshal(batchBody(2))
	start := make(chan struct{})
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := httptest.NewRequest(http.MethodPost, "/v1/predict-batch", bytes.NewReader(raw))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			retryAfter[i] = rec.Header().Get("Retry-After")
		}(i)
	}
	close(start)
	wg.Wait()

	ok, shed := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	// Capacity is maxInflight running + maxInflight queued; the burst hits
	// at once, so both outcomes must occur.
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of %d: %d ok, %d shed — want both non-zero", burst, ok, shed)
	}
	if got := s.Metrics().Snapshot().Counters["http.shed"]; got != uint64(shed) {
		t.Fatalf("http.shed = %d, want %d", got, shed)
	}
	settleGoroutines(t, base)
}

// TestCancelledRequestReturnsFast: a client that vanishes mid-inference
// gets its goroutine back in under 100ms even though the stage it was in
// would have taken 10 more seconds.
func TestCancelledRequestReturnsFast(t *testing.T) {
	engFaults := faultinject.New().
		On(faultinject.InferForward, faultinject.Sleep(10*time.Second))
	s := chaosServer(t, engFaults, nil)

	ctx, cancel := context.WithCancel(context.Background())
	raw, _ := json.Marshal(batchBody(2))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict-batch", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the stalled forward
	t0 := time.Now()
	cancel()
	select {
	case <-done:
	case <-time.After(100 * time.Millisecond):
		t.Fatal("cancelled request did not return within 100ms")
	}
	if elapsed := time.Since(t0); elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled request took %s after cancel", elapsed)
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

// TestDeadlineSurfacesAs504: a request whose inference stalls past the
// configured -request-timeout comes back as a JSON 504 and counts under
// http.timeouts.
func TestDeadlineSurfacesAs504(t *testing.T) {
	engFaults := faultinject.New().
		On(faultinject.InferForward, faultinject.Sleep(10*time.Second))
	s := chaosServer(t, engFaults, nil, WithRequestTimeout(30*time.Millisecond))

	t0 := time.Now()
	rec := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("timed-out request took %s", elapsed)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("504 body not a JSON error: %s", rec.Body)
	}
	if got := s.Metrics().Snapshot().Counters["http.timeouts"]; got != 1 {
		t.Fatalf("http.timeouts = %d, want 1", got)
	}

	// Exempt paths skip the deadline middleware entirely.
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz under request timeout: %d", hrec.Code)
	}
}

// TestInjectedHandlerErrorIs500: a fault that is neither cancellation nor a
// deadline maps to a plain 500 with a JSON body.
func TestInjectedHandlerErrorIs500(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Err(errInjected))
	s := chaosServer(t, nil, srvFaults)
	rec := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "injected") {
		t.Fatalf("500 body: %s", rec.Body)
	}
}

// TestIndexEndpointMapsContextErrors: /v1/index shares the predict path's
// deadline mapping (504) and rejects un-identified tables outright (400).
func TestIndexEndpointMapsContextErrors(t *testing.T) {
	engFaults := faultinject.New().
		On(faultinject.InferForward, faultinject.Sleep(10*time.Second))
	s := chaosServer(t, engFaults, nil, WithRequestTimeout(30*time.Millisecond))

	rec := postJSON(t, s, "/v1/index", sampleRequest(""))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("index without id: %d", rec.Code)
	}
	rec = postJSON(t, s, "/v1/index", sampleRequest("t99"))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("stalled index: %d, want 504", rec.Code)
	}
}

// TestQueuedRequestObservesDeadline: the admission-queue wait counts
// against the request deadline — a request stuck behind a stalled server
// times out in the queue with 504 instead of waiting forever.
func TestQueuedRequestObservesDeadline(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(2*time.Second))
	s := chaosServer(t, nil, srvFaults, WithMaxInflight(1), WithRequestTimeout(50*time.Millisecond))

	raw, _ := json.Marshal(sampleRequest(""))
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
		time.Sleep(10 * time.Millisecond) // request 0 admits first, 1 queues
	}
	wg.Wait()
	// Request 0 stalls 2s at the handler gate, then times out (its own
	// deadline expired while sleeping) → 504. Request 1 times out queued →
	// 504. Either way: no request may still be running or waiting.
	for i, code := range codes {
		if code != http.StatusGatewayTimeout {
			t.Fatalf("request %d: status %d, want 504", i, code)
		}
	}
}

// TestShutdownDrainsInflight: Shutdown lets admitted requests finish (they
// come back 200), turns new work away with 503, flips healthz to draining,
// keeps /v1/metrics scrapable, and flushes a final metrics snapshot.
func TestShutdownDrainsInflight(t *testing.T) {
	var logBuf bytes.Buffer
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(100*time.Millisecond))
	s := chaosServer(t, nil, srvFaults,
		WithMaxInflight(4), WithLogger(log.New(&logBuf, "", 0)))

	raw, _ := json.Marshal(sampleRequest(""))
	const busy = 3
	codes := make([]int, busy)
	var wg sync.WaitGroup
	for i := 0; i < busy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
	}
	// Wait until all three are admitted and inside the slow handler gate.
	for deadline := time.Now().Add(2 * time.Second); s.inflight.Load() < busy; {
		if time.Now().After(deadline) {
			t.Fatalf("requests not admitted: inflight = %d", s.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}

	if s.Draining() {
		t.Fatal("server draining before Shutdown")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("server not draining after Shutdown")
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request %d finished with %d, want 200", i, code)
		}
	}

	// New work is turned away; health fails over; metrics stay scrapable.
	rec := postJSON(t, s, "/v1/predict", sampleRequest(""))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("post-shutdown request: status %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusServiceUnavailable || !strings.Contains(hrec.Body.String(), "draining") {
		t.Fatalf("healthz while draining: %d %s", hrec.Code, hrec.Body)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, req)
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics while draining: %d", mrec.Code)
	}
	if !strings.Contains(logBuf.String(), "final metrics") {
		t.Fatal("Shutdown did not flush a final metrics snapshot")
	}
	if s.Metrics().Snapshot().Gauges["http.draining"] != 1 {
		t.Fatal("http.draining gauge not set")
	}
}

// TestShutdownTimesOutWhileBusy: a drain that cannot finish inside its
// budget returns the context error instead of hanging.
func TestShutdownTimesOutWhileBusy(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(500*time.Millisecond))
	s := chaosServer(t, nil, srvFaults)

	raw, _ := json.Marshal(sampleRequest(""))
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	for deadline := time.Now().Add(2 * time.Second); s.inflight.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("request not admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown must report an incomplete drain")
	}
	<-done // let the stalled request finish so it can't leak into other tests
}

// TestExemptPathsBypassAdmission: with the server saturated, health checks
// and metrics scrapes still answer immediately — overload must not blind
// the operator.
func TestExemptPathsBypassAdmission(t *testing.T) {
	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(300*time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithMaxInflight(1))

	raw, _ := json.Marshal(sampleRequest(""))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one admitted, one queued: capacity full
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw))
			s.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	for deadline := time.Now().Add(2 * time.Second); s.inflight.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("request not admitted")
		}
		time.Sleep(time.Millisecond)
	}
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/slo"} {
		t0 := time.Now()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s under load: %d", path, rec.Code)
		}
		if time.Since(t0) > 100*time.Millisecond {
			t.Fatalf("%s queued behind traffic", path)
		}
	}
	wg.Wait()
}

// TestRecoverOnPlainWriter: the panic recoverer must also work when the
// response writer is not the chain's respWriter (e.g. a handler invoked
// outside the full middleware stack).
func TestRecoverOnPlainWriter(t *testing.T) {
	s := chaosServer(t, nil, nil)
	h := s.withRecover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("body: %s", rec.Body)
	}
}

// TestDecodeRejectsTrailingGarbage is the regression test for the
// decodeJSONBody fix: a valid JSON object followed by trailing bytes must
// be a 400, not a silently truncated accept.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	s := chaosServer(t, nil, nil)
	valid, _ := json.Marshal(sampleRequest(""))
	for _, tc := range []struct {
		body string
		want int
	}{
		{string(valid), http.StatusOK},
		{string(valid) + "garbage", http.StatusBadRequest},
		{string(valid) + string(valid), http.StatusBadRequest},
		{string(valid) + " \n\t ", http.StatusOK}, // trailing whitespace is fine
		{string(valid) + "null", http.StatusBadRequest},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("body %q: status = %d, want %d", tc.body, rec.Code, tc.want)
		}
	}
}
