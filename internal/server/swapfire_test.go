package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/faultinject"
)

// TestSwapUnderFire is the lifecycle acceptance scenario (DESIGN.md §14):
// sustained predict-batch fire at 8× the admission capacity while the full
// lifecycle sequence — load, promote, rollback, load again, promote again,
// roll back again — executes mid-flight, with the swap epilogue and the
// handler path both stretched by injected latency. The guarantees under
// proof, all with `-race` via `make race`:
//
//   - every request resolves to exactly 200 (served, possibly after
//     queueing) or 429 (shed) — a swap never produces a 5xx, a dropped
//     connection, or a hung request;
//   - every 200 carries a complete, well-formed batch response — no request
//     observes a half-swapped engine;
//   - after the dust settles, every retired engine has drained via its
//     refcount and no goroutine leaks.
func TestSwapUnderFire(t *testing.T) {
	const maxInflight = 2
	const clients = 8 * maxInflight
	const requestsEach = 6

	srvFaults := faultinject.New().
		On(faultinject.ServerHandle, faultinject.Sleep(15*time.Millisecond)).
		On(faultinject.ServerSwap, faultinject.Sleep(10*time.Millisecond)).
		On(faultinject.ServerShadow, faultinject.Sleep(time.Millisecond))
	s := chaosServer(t, nil, srvFaults, WithMaxInflight(maxInflight))
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	v2 := savedCheckpoint(t, dir, "v2.bin", true)
	v3 := savedCheckpoint(t, dir, "v3.bin", false)

	raw, _ := json.Marshal(batchBody(2))
	type outcome struct {
		code int
		body []byte
	}
	results := make([][]outcome, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		results[c] = make([]outcome, requestsEach)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < requestsEach; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict-batch", bytes.NewReader(raw))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				results[c][i] = outcome{rec.Code, rec.Body.Bytes()}
			}
		}(c)
	}
	close(start)

	// The lifecycle sequence fires while the burst is in flight. Each step
	// pauses briefly so swaps land between, under, and around admitted
	// requests rather than bunching at the start.
	step := func(path string, body any) {
		modelsPost(t, s, path, body, http.StatusOK)
		time.Sleep(20 * time.Millisecond)
	}
	step("/v1/models", ModelsRequest{ID: "v2", Path: v2})
	step("/v1/models/promote", nil)
	step("/v1/models/rollback", nil) // restore boot
	step("/v1/models", ModelsRequest{ID: "v3", Path: v3})
	step("/v1/models/promote", nil)
	step("/v1/models/rollback", nil) // restore boot again
	wg.Wait()

	ok, shed := 0, 0
	for c := range results {
		for i, r := range results[c] {
			switch r.code {
			case http.StatusOK:
				ok++
				var br BatchResponse
				if err := json.Unmarshal(r.body, &br); err != nil || len(br.Results) != 2 {
					t.Fatalf("client %d req %d: 200 with bad body: %s", c, i, r.body)
				}
				for _, res := range br.Results {
					if len(res.Columns) != 2 {
						t.Fatalf("client %d req %d: half-formed result: %+v", c, i, res)
					}
				}
			case http.StatusTooManyRequests:
				shed++
			default:
				t.Fatalf("client %d req %d: status %d — swaps must never surface errors", c, i, r.code)
			}
		}
	}
	if ok == 0 {
		t.Fatal("no request was ever served during the swap storm")
	}
	t.Logf("swap under fire: %d served, %d shed across %d requests", ok, shed, clients*requestsEach)

	drain(t, s)
	// Engines created: boot, v2-shadow, v2-primary, restored-boot, v3-shadow,
	// v3-primary, restored-boot-again. All but the final primary must have
	// retired and fully drained.
	if got := s.Metrics().Snapshot().Counters["models.engines.drained"]; got != 6 {
		t.Fatalf("models.engines.drained = %d, want 6", got)
	}
	eng := s.primaryEngine()
	if eng.Retired() || eng.Refs() != 1 {
		t.Fatalf("final primary engine: retired=%v refs=%d, want live with owner ref", eng.Retired(), eng.Refs())
	}
	settleGoroutines(t, base)
}
