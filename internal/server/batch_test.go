package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPredictBatchEndpoint(t *testing.T) {
	s := trainedServer(t)
	batch := BatchRequest{Tables: []TableRequest{
		sampleRequest("t1"),
		{
			Name: "Soccer Season",
			Columns: []ColumnRequest{
				{Header: "Team", Values: []string{"Arsenal", "Chelsea"}},
				{Header: "Goals", Values: []string{"68", "51"}},
			},
		},
	}}
	rec := postJSON(t, s, "/v1/predict-batch", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}

	// The batched result must match the single-table endpoint exactly.
	single := postJSON(t, s, "/v1/predict", batch.Tables[0])
	var want PredictResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0]
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("batch returned %d columns, single %d", len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("col %d: batch %+v != single %+v", i, got.Columns[i], want.Columns[i])
		}
	}
}

func TestPredictBatchRejectsBadBodies(t *testing.T) {
	s := trainedServer(t)
	cases := []string{
		`{`,               // malformed
		`{"tables":[]}`,   // empty batch
		`{"nope":true}`,   // unknown field
		`{"tables":[{}]}`, // table with no columns
	}
	for _, body := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict-batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, rec.Code)
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Fatalf("body %q: error response not JSON: %s", body, rec.Body)
		}
	}
}

// TestOversizedBodyGets413 exercises the MaxBytesReader path with a small
// limit (the production caps are MB-scale constants; the handler logic is
// identical).
func TestOversizedBodyGets413(t *testing.T) {
	big := `{"name":"` + strings.Repeat("x", 256) + `"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(big))
	rec := httptest.NewRecorder()
	var tr TableRequest
	if decodeJSONBody(rec, req, 64, &tr) {
		t.Fatal("decode of oversized body should fail")
	}
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("413 response not JSON: %s", rec.Body)
	}
}
