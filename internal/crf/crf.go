// Package crf implements a linear-chain conditional random field over the
// column sequence of a table — Sato's structured prediction layer. Unary
// potentials come from a per-column classifier's logits; the CRF learns a
// pairwise transition matrix between adjacent columns' semantic types and
// decodes with Viterbi.
package crf

import (
	"math"
	"math/rand"
)

// Model is a linear-chain CRF with K states (semantic types).
type Model struct {
	K int
	// Trans[i*K+j] is the learned score for type i followed by type j.
	Trans []float64
}

// New returns a CRF with zero-initialized transitions (equivalent to
// independent decoding until trained).
func New(k int) *Model {
	return &Model{K: k, Trans: make([]float64, k*k)}
}

// NewRandom returns a CRF with small random transitions (symmetry
// breaking for training).
func NewRandom(k int, rng *rand.Rand) *Model {
	m := New(k)
	for i := range m.Trans {
		m.Trans[i] = rng.NormFloat64() * 0.01
	}
	return m
}

// logSumExp returns log Σ exp(xs) computed stably.
func logSumExp(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

// logZ computes the log partition function of a chain with the given unary
// scores (T×K) plus alpha (T×K forward log-messages, reused buffer).
func (m *Model) logZ(unary [][]float64) float64 {
	t := len(unary)
	if t == 0 {
		return 0
	}
	k := m.K
	alpha := append([]float64(nil), unary[0]...)
	next := make([]float64, k)
	tmp := make([]float64, k)
	for i := 1; i < t; i++ {
		for j := 0; j < k; j++ {
			for p := 0; p < k; p++ {
				tmp[p] = alpha[p] + m.Trans[p*k+j]
			}
			next[j] = logSumExp(tmp) + unary[i][j]
		}
		alpha, next = next, alpha
	}
	return logSumExp(alpha)
}

// NLL returns the negative log-likelihood of the label sequence given
// unary scores.
func (m *Model) NLL(unary [][]float64, labels []int) float64 {
	t := len(unary)
	if t == 0 {
		return 0
	}
	var score float64
	for i := 0; i < t; i++ {
		score += unary[i][labels[i]]
		if i > 0 {
			score += m.Trans[labels[i-1]*m.K+labels[i]]
		}
	}
	return m.logZ(unary) - score
}

// marginals returns pairwise transition expectations E[1{y_{i-1}=p, y_i=j}]
// summed over positions — the gradient statistics for training.
func (m *Model) pairwiseExpectations(unary [][]float64) []float64 {
	t := len(unary)
	k := m.K
	exp := make([]float64, k*k)
	if t < 2 {
		return exp
	}
	// forward
	alphas := make([][]float64, t)
	alphas[0] = append([]float64(nil), unary[0]...)
	tmp := make([]float64, k)
	for i := 1; i < t; i++ {
		alphas[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			for p := 0; p < k; p++ {
				tmp[p] = alphas[i-1][p] + m.Trans[p*k+j]
			}
			alphas[i][j] = logSumExp(tmp) + unary[i][j]
		}
	}
	// backward
	betas := make([][]float64, t)
	betas[t-1] = make([]float64, k) // zeros
	for i := t - 2; i >= 0; i-- {
		betas[i] = make([]float64, k)
		for p := 0; p < k; p++ {
			for j := 0; j < k; j++ {
				tmp[j] = m.Trans[p*k+j] + unary[i+1][j] + betas[i+1][j]
			}
			betas[i][p] = logSumExp(tmp)
		}
	}
	logZ := logSumExp(alphas[t-1])
	for i := 1; i < t; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < k; j++ {
				lp := alphas[i-1][p] + m.Trans[p*k+j] + unary[i][j] + betas[i][j] - logZ
				exp[p*k+j] += math.Exp(lp)
			}
		}
	}
	return exp
}

// TrainStep performs one SGD step of transition-matrix learning on a single
// chain: gradient = E_model[counts] − observed counts. Returns the chain's
// NLL before the update.
func (m *Model) TrainStep(unary [][]float64, labels []int, lr float64) float64 {
	nll := m.NLL(unary, labels)
	if len(unary) < 2 {
		return nll
	}
	exp := m.pairwiseExpectations(unary)
	k := m.K
	for i := 1; i < len(labels); i++ {
		exp[labels[i-1]*k+labels[i]] -= 1
	}
	for idx, g := range exp {
		m.Trans[idx] -= lr * g
	}
	return nll
}

// Decode returns the Viterbi-optimal label sequence for the unary scores.
func (m *Model) Decode(unary [][]float64) []int {
	t := len(unary)
	if t == 0 {
		return nil
	}
	k := m.K
	delta := append([]float64(nil), unary[0]...)
	back := make([][]int, t)
	next := make([]float64, k)
	for i := 1; i < t; i++ {
		back[i] = make([]int, k)
		for j := 0; j < k; j++ {
			best, bestP := math.Inf(-1), 0
			for p := 0; p < k; p++ {
				s := delta[p] + m.Trans[p*k+j]
				if s > best {
					best, bestP = s, p
				}
			}
			next[j] = best + unary[i][j]
			back[i][j] = bestP
		}
		delta, next = next, delta
	}
	bestJ, best := 0, math.Inf(-1)
	for j, v := range delta {
		if v > best {
			best, bestJ = v, j
		}
	}
	out := make([]int, t)
	out[t-1] = bestJ
	for i := t - 1; i > 0; i-- {
		out[i-1] = back[i][out[i]]
	}
	return out
}
