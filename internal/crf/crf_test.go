package crf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestZeroTransitionsDecodeEqualsArgmax(t *testing.T) {
	m := New(3)
	unary := [][]float64{
		{1, 0, 0},
		{0, 2, 0},
		{0, 0, 3},
	}
	got := m.Decode(unary)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Decode = %v", got)
	}
}

func TestDecodeUsesTransitions(t *testing.T) {
	// Unaries slightly favor state 1 at position 1, but a strong learned
	// transition 0→0 must override it.
	m := New(2)
	m.Trans[0*2+0] = 5 // 0→0 strongly preferred
	unary := [][]float64{
		{2, 0},
		{0, 0.5},
	}
	got := m.Decode(unary)
	if !reflect.DeepEqual(got, []int{0, 0}) {
		t.Fatalf("Decode = %v, transitions ignored", got)
	}
}

func TestDecodeEmptyAndSingle(t *testing.T) {
	m := New(2)
	if got := m.Decode(nil); got != nil {
		t.Fatal("empty chain should decode to nil")
	}
	if got := m.Decode([][]float64{{0, 1}}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("single-element chain = %v", got)
	}
}

func TestNLLNonNegativeAndZeroForCertainty(t *testing.T) {
	m := New(2)
	// Overwhelming unary evidence → NLL near 0 for the right labels.
	unary := [][]float64{{100, 0}, {0, 100}}
	nll := m.NLL(unary, []int{0, 1})
	if nll < 0 || nll > 1e-6 {
		t.Fatalf("NLL = %v, want ≈0", nll)
	}
	wrong := m.NLL(unary, []int{1, 0})
	if wrong < 100 {
		t.Fatalf("wrong labels NLL = %v, want large", wrong)
	}
}

func TestLogZMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := 3
	m := NewRandom(k, rng)
	for i := range m.Trans {
		m.Trans[i] = rng.NormFloat64()
	}
	unary := [][]float64{}
	for i := 0; i < 4; i++ {
		row := make([]float64, k)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		unary = append(unary, row)
	}
	// brute force over all 3^4 sequences
	var seqs [][]int
	var build func(prefix []int)
	build = func(prefix []int) {
		if len(prefix) == 4 {
			seqs = append(seqs, append([]int(nil), prefix...))
			return
		}
		for j := 0; j < k; j++ {
			build(append(prefix, j))
		}
	}
	build(nil)
	var total float64
	for _, seq := range seqs {
		var score float64
		for i, y := range seq {
			score += unary[i][y]
			if i > 0 {
				score += m.Trans[seq[i-1]*k+y]
			}
		}
		total += math.Exp(score)
	}
	want := math.Log(total)
	got := m.logZ(unary)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("logZ = %v, brute force = %v", got, want)
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 3
	m := NewRandom(k, rng)
	for i := range m.Trans {
		m.Trans[i] = rng.NormFloat64()
	}
	unary := [][]float64{}
	for i := 0; i < 4; i++ {
		row := make([]float64, k)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		unary = append(unary, row)
	}
	score := func(seq []int) float64 {
		var s float64
		for i, y := range seq {
			s += unary[i][y]
			if i > 0 {
				s += m.Trans[seq[i-1]*k+y]
			}
		}
		return s
	}
	best := math.Inf(-1)
	var bestSeq []int
	var walk func(prefix []int)
	walk = func(prefix []int) {
		if len(prefix) == 4 {
			if s := score(prefix); s > best {
				best = s
				bestSeq = append([]int(nil), prefix...)
			}
			return
		}
		for j := 0; j < k; j++ {
			walk(append(prefix, j))
		}
	}
	walk(nil)
	got := m.Decode(unary)
	if math.Abs(score(got)-best) > 1e-9 {
		t.Fatalf("Viterbi %v (score %v) vs brute %v (score %v)", got, score(got), bestSeq, best)
	}
}

func TestTrainingLearnsTransitionPattern(t *testing.T) {
	// Ground truth: label at position i+1 always equals label at i
	// (columns of the same table share a domain). Weak/noisy unaries.
	rng := rand.New(rand.NewSource(3))
	k := 2
	m := NewRandom(k, rng)

	mkChain := func(label int) ([][]float64, []int) {
		unary := make([][]float64, 4)
		labels := make([]int, 4)
		for i := range unary {
			unary[i] = []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
			labels[i] = label
		}
		// one informative position
		unary[0][label] += 1
		return unary, labels
	}

	before := 0.0
	for epoch := 0; epoch < 60; epoch++ {
		var total float64
		for c := 0; c < 20; c++ {
			unary, labels := mkChain(c % 2)
			total += m.TrainStep(unary, labels, 0.05)
		}
		if epoch == 0 {
			before = total
		}
	}
	// Self-transitions must now dominate cross-transitions.
	if m.Trans[0] <= m.Trans[1] || m.Trans[3] <= m.Trans[2] {
		t.Fatalf("self transitions not learned: %v", m.Trans)
	}
	var after float64
	for c := 0; c < 20; c++ {
		unary, labels := mkChain(c % 2)
		after += m.NLL(unary, labels)
	}
	if after >= before {
		t.Fatalf("training did not reduce NLL: before=%v after=%v", before, after)
	}
}

func TestPairwiseExpectationsSumToChainLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewRandom(3, rng)
	unary := [][]float64{{0, 1, 2}, {2, 1, 0}, {1, 1, 1}}
	exp := m.pairwiseExpectations(unary)
	var s float64
	for _, e := range exp {
		if e < -1e-9 {
			t.Fatal("negative expectation")
		}
		s += e
	}
	// T-1 transitions in a length-3 chain
	if math.Abs(s-2) > 1e-6 {
		t.Fatalf("expectations sum to %v, want 2", s)
	}
}

func TestTrainStepShortChainNoCrash(t *testing.T) {
	m := New(2)
	nll := m.TrainStep([][]float64{{0, 1}}, []int{1}, 0.1)
	if math.IsNaN(nll) {
		t.Fatal("NaN on single-element chain")
	}
	if m.TrainStep(nil, nil, 0.1) != 0 {
		t.Fatal("empty chain NLL should be 0")
	}
}
