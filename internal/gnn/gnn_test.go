package gnn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/table"
	"github.com/sematype/pythagoras/internal/tensor"
)

func testGraph() *graph.Graph {
	tb := &table.Table{
		Name: "NBA Ply Stats",
		ID:   "t",
		Columns: []*table.Column{
			{Header: "Ply", SemanticType: "name", Kind: table.KindText, TextValues: []string{"a", "b"}},
			{Header: "PPG", SemanticType: "ppg", Kind: table.KindNumeric, NumValues: []float64{28, 15}},
			{Header: "APG", SemanticType: "apg", Kind: table.KindNumeric, NumValues: []float64{7, 2}},
		},
	}
	return graph.Build(tb, map[string]int{"name": 0, "ppg": 1, "apg": 2}, graph.BuildOptions{})
}

func randStates(rng *rand.Rand, n, d int) *tensor.Matrix {
	m := tensor.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestHeteroConvShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph()
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 8, 4, rng)
	tape := autodiff.NewTape()
	grads := nn.NewGradSet()
	h := tape.Constant(randStates(rng, g.NumNodes(), 8))
	out := hc.Apply(tape, grads, h, g, true)
	if r, c := out.Shape(); r != g.NumNodes() || c != 4 {
		t.Fatalf("out = %dx%d, want %dx4", r, c, g.NumNodes())
	}
}

func TestHeteroConvParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := nn.NewParams()
	NewHeteroConv(p, "conv", 8, 4, rng)
	// 3 edge weights + self weight + bias
	if got := len(p.Names()); got != 5 {
		t.Fatalf("param matrices = %d, want 5", got)
	}
	want := 3*8*4 + 8*4 + 4
	if got := p.Count(); got != want {
		t.Fatalf("scalar params = %d, want %d", got, want)
	}
}

func TestMessagePassingDeliversContext(t *testing.T) {
	// Zero out all node states except one text column; after one conv, only
	// nodes reachable from it (the numeric columns) plus bias/self effects
	// change. With identity-free zero states the numeric columns must be the
	// only nodes receiving its message through the yellow edge.
	rng := rand.New(rand.NewSource(3))
	g := testGraph()
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 4, 4, rng)
	hc.Bias.Zero()

	textNode := g.NodesOfType(graph.NodeTextColumn)[0]
	states := tensor.New(g.NumNodes(), 4)
	for j := 0; j < 4; j++ {
		states.Set(textNode, j, 1)
	}

	tape := autodiff.NewTape()
	out := hc.Apply(tape, nn.NewGradSet(), tape.Constant(states), g, false)

	numNodes := g.NodesOfType(graph.NodeNumericColumn)
	for _, ni := range numNodes {
		var norm float64
		for j := 0; j < 4; j++ {
			norm += math.Abs(out.Value.At(ni, j))
		}
		if norm == 0 {
			t.Fatalf("numeric node %d received no message from text column", ni)
		}
	}
	// The table-name node has no in-edges and zero state → must stay zero.
	tn := g.NodesOfType(graph.NodeTableName)[0]
	for j := 0; j < 4; j++ {
		if out.Value.At(tn, j) != 0 {
			t.Fatal("table-name node received a message it should not")
		}
	}
}

func TestMeanAggregationNormalizes(t *testing.T) {
	// Two text columns each sending state s to one numeric node via the
	// same weights must aggregate to the same result as one sender with
	// state s (mean, not sum).
	rng := rand.New(rand.NewSource(4))
	mk := func(numText int) *graph.Graph {
		cols := []*table.Column{}
		for i := 0; i < numText; i++ {
			cols = append(cols, &table.Column{
				Header: "t", SemanticType: "x", Kind: table.KindText, TextValues: []string{"v"}})
		}
		cols = append(cols, &table.Column{
			Header: "n", SemanticType: "y", Kind: table.KindNumeric, NumValues: []float64{1}})
		tb := &table.Table{Name: "T", ID: "t", Columns: cols}
		return graph.Build(tb, map[string]int{"x": 0, "y": 1}, graph.BuildOptions{
			DropTableName: true, DropNumericFeatures: true,
		})
	}
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 3, 3, rng)
	hc.Bias.Zero()

	run := func(g *graph.Graph) []float64 {
		states := tensor.New(g.NumNodes(), 3)
		for _, tn := range g.NodesOfType(graph.NodeTextColumn) {
			for j := 0; j < 3; j++ {
				states.Set(tn, j, 2)
			}
		}
		tape := autodiff.NewTape()
		out := hc.Apply(tape, nn.NewGradSet(), tape.Constant(states), g, false)
		ni := g.NodesOfType(graph.NodeNumericColumn)[0]
		return append([]float64(nil), out.Value.Row(ni)...)
	}
	one := run(mk(1))
	three := run(mk(3))
	for j := range one {
		if math.Abs(one[j]-three[j]) > 1e-9 {
			t.Fatalf("mean aggregation broken: 1-sender=%v 3-sender=%v", one, three)
		}
	}
}

func TestHeteroConvGradientsFlowToAllWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testGraph()
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 6, 3, rng)
	tape := autodiff.NewTape()
	grads := nn.NewGradSet()
	h := tape.Constant(randStates(rng, g.NumNodes(), 6))
	out := hc.Apply(tape, grads, h, g, true)

	targets := g.TargetNodes()
	logits := tape.GatherRows(out, targets)
	labels := make([]int, len(targets))
	for i, n := range targets {
		labels[i] = g.Labels[n]
	}
	loss := tape.SoftmaxCrossEntropy(logits, labels, nil)
	tape.Backward(loss)

	for _, name := range p.Names() {
		if grads.Grad(name) == nil {
			t.Fatalf("no gradient reached %q", name)
		}
	}
}

func TestHeteroConvGradientCheck(t *testing.T) {
	// Finite-difference check of one edge weight through the full conv.
	rng := rand.New(rand.NewSource(6))
	g := testGraph()
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 4, 3, rng)
	states := randStates(rng, g.NumNodes(), 4)
	targets := g.TargetNodes()
	labels := make([]int, len(targets))
	for i, n := range targets {
		labels[i] = g.Labels[n]
	}

	lossOf := func() float64 {
		tape := autodiff.NewTape()
		out := hc.Apply(tape, nn.NewGradSet(), tape.Constant(states), g, true)
		logits := tape.GatherRows(out, targets)
		return tape.SoftmaxCrossEntropy(logits, labels, nil).Value.Data[0]
	}

	tape := autodiff.NewTape()
	grads := nn.NewGradSet()
	out := hc.Apply(tape, grads, tape.Constant(states), g, true)
	logits := tape.GatherRows(out, targets)
	loss := tape.SoftmaxCrossEntropy(logits, labels, nil)
	tape.Backward(loss)

	for _, name := range []string{"conv.edge1.w", "conv.self.w", "conv.b"} {
		w := p.Get(name)
		analytic := grads.Grad(name)
		if analytic == nil {
			t.Fatalf("no grad for %s", name)
		}
		const h = 1e-6
		for i := 0; i < len(w.Data); i += 5 { // spot-check every 5th element
			orig := w.Data[i]
			w.Data[i] = orig + h
			fp := lossOf()
			w.Data[i] = orig - h
			fm := lossOf()
			w.Data[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-analytic.Data[i]) > 1e-4*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic=%g numeric=%g", name, i, analytic.Data[i], num)
			}
		}
	}
}

func TestStackDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := nn.NewParams()
	s := NewStack(p, "gnn", []int{8, 8, 4}, rng)
	if len(s.Layers) != 2 {
		t.Fatalf("stack depth = %d, want 2", len(s.Layers))
	}
	g := testGraph()
	tape := autodiff.NewTape()
	out := s.Apply(tape, nn.NewGradSet(), tape.Constant(randStates(rng, g.NumNodes(), 8)), g, false)
	if _, c := out.Shape(); c != 4 {
		t.Fatalf("stack out dim = %d, want 4", c)
	}
}

func TestStackPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStack(nn.NewParams(), "gnn", []int{8}, rand.New(rand.NewSource(0)))
}

func TestEmptyEdgeTypesSkipped(t *testing.T) {
	// With all ablations on, the conv must still work (self-loop only).
	rng := rand.New(rand.NewSource(8))
	tb := &table.Table{Name: "T", ID: "t", Columns: []*table.Column{
		{Header: "n", SemanticType: "y", Kind: table.KindNumeric, NumValues: []float64{1, 2}},
	}}
	g := graph.Build(tb, map[string]int{"y": 0}, graph.BuildOptions{
		DropTableName: true, DropTextColumns: true, DropNumericFeatures: true,
	})
	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", 4, 4, rng)
	tape := autodiff.NewTape()
	out := hc.Apply(tape, nn.NewGradSet(), tape.Constant(randStates(rng, g.NumNodes(), 4)), g, true)
	if out.Value.HasNaN() {
		t.Fatal("NaN from isolated-node conv")
	}
}

func TestLearnsContextDependentLabels(t *testing.T) {
	// End-to-end micro-training: two tables, identical numeric columns,
	// different text-column content. Correct label depends solely on the
	// yellow-edge context — exactly the paper's motivating scenario. The
	// GNN must fit it; a context-free model cannot.
	rng := rand.New(rand.NewSource(9))
	mk := func(id, txt string, label string) *table.Table {
		return &table.Table{Name: "Stats", ID: id, Columns: []*table.Column{
			{Header: "ctx", SemanticType: "ctx." + txt, Kind: table.KindText, TextValues: []string{txt, txt}},
			{Header: "val", SemanticType: label, Kind: table.KindNumeric, NumValues: []float64{10, 20}},
		}}
	}
	labels := map[string]int{"ctx.basket": 0, "ctx.foot": 1, "ppg": 2, "ypg": 3}
	g := graph.BuildBatch([]*table.Table{
		mk("a", "basket", "ppg"), mk("b", "foot", "ypg"),
	}, labels, graph.BuildOptions{DropTableName: true, DropNumericFeatures: true})

	// Initial states: text columns get distinct one-hot-ish states; numeric
	// columns identical states (values identical).
	d := 8
	states := tensor.New(g.NumNodes(), d)
	for i, m := range g.Meta {
		if g.Types[i] == graph.NodeTextColumn {
			if m.TableID == "a" {
				states.Set(i, 0, 1)
			} else {
				states.Set(i, 1, 1)
			}
		} else {
			states.Set(i, 2, 1) // identical numeric representation
		}
	}

	p := nn.NewParams()
	hc := NewHeteroConv(p, "conv", d, 4, rng)
	opt := nn.NewAdam(0.05)
	targets := g.TargetNodes()
	lab := make([]int, len(targets))
	for i, n := range targets {
		lab[i] = g.Labels[n]
	}

	var loss float64
	for epoch := 0; epoch < 200; epoch++ {
		tape := autodiff.NewTape()
		grads := nn.NewGradSet()
		out := hc.Apply(tape, grads, tape.Constant(states), g, false)
		logits := tape.GatherRows(out, targets)
		l := tape.SoftmaxCrossEntropy(logits, lab, nil)
		tape.Backward(l)
		opt.Step(p, grads)
		loss = l.Value.Data[0]
	}
	if loss > 0.1 {
		t.Fatalf("context-dependent task not learned, loss=%v", loss)
	}
}
