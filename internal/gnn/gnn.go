// Package gnn implements the heterogeneous graph convolutional module of
// Pythagoras (paper §3.1, Figure 3).
//
// The module combines one graph convolution (Kipf & Welling style) per edge
// type: for each edge type r, messages from source nodes pass through that
// type's learned weight matrix W_r and are mean-aggregated at the
// destination; the per-type aggregations are then summed together with a
// learned self-transformation W_n of the node's own state, plus a bias,
// followed by a ReLU. Each edge type learning its own W_r is what lets the
// model weight table-name context differently from non-numerical-column
// context and from the statistical features.
package gnn

import (
	"fmt"
	"math/rand"

	"github.com/sematype/pythagoras/internal/autodiff"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/nn"
	"github.com/sematype/pythagoras/internal/tensor"
)

// HeteroConv is one heterogeneous graph convolution layer.
type HeteroConv struct {
	prefix string
	// EdgeW holds one learned weight matrix per edge type (W_tn, W_nn,
	// W_ncf in Figure 3).
	EdgeW [graph.NumEdgeTypes]*tensor.Matrix
	// SelfW is the node's own transformation (W_n in Figure 3).
	SelfW *tensor.Matrix
	Bias  *tensor.Matrix
}

// NewHeteroConv creates a layer mapping in-dim node states to out-dim
// states, registering parameters under prefix.
func NewHeteroConv(p *nn.Params, prefix string, in, out int, rng *rand.Rand) *HeteroConv {
	hc := &HeteroConv{prefix: prefix}
	for et := graph.EdgeType(0); et < graph.NumEdgeTypes; et++ {
		w := tensor.New(in, out)
		nn.XavierInit(w, rng)
		hc.EdgeW[et] = p.Add(fmt.Sprintf("%s.edge%d.w", prefix, et), w)
	}
	hc.SelfW = tensor.New(in, out)
	nn.XavierInit(hc.SelfW, rng)
	p.Add(prefix+".self.w", hc.SelfW)
	hc.Bias = p.Add(prefix+".b", tensor.New(1, out))
	return hc
}

// Apply runs the convolution over the batched graph g with node states h
// (NumNodes×in). It returns new node states (NumNodes×out). grads tracks
// the bound parameters for the optimizer; a nil grads runs in inference
// mode (parameters enter the tape as constants, no gradient bookkeeping).
// Pass activate=false to skip the final ReLU (e.g. for the last layer
// before the classifier).
func (hc *HeteroConv) Apply(t *autodiff.Tape, grads *nn.GradSet, h *autodiff.Var, g *graph.Graph, activate bool) *autodiff.Var {
	selfW := nn.ParamVar(t, grads, hc.prefix+".self.w", hc.SelfW)
	out := t.MatMul(h, selfW)

	for et := graph.EdgeType(0); et < graph.NumEdgeTypes; et++ {
		el := g.Edges[et]
		if el.Len() == 0 {
			continue
		}
		w := nn.ParamVar(t, grads, fmt.Sprintf("%s.edge%d.w", hc.prefix, et), hc.EdgeW[et])
		// Fused message passing: one h×W product over nodes (gather
		// commutes with the right-multiplication), scatter-aggregated and
		// mean-normalized (g.InvDegrees is cached per graph) in a single
		// op — no gathered-copy, message, or aggregate temporaries.
		out = t.Add(out, t.EdgeMix(h, w, el.Src, el.Dst, g.NumNodes(), g.InvDegrees(et)))
	}

	bias := nn.ParamVar(t, grads, hc.prefix+".b", hc.Bias)
	out = t.AddRow(out, bias)
	if activate {
		out = t.ReLU(out)
	}
	return out
}

// Stack is a sequence of HeteroConv layers with ReLU between them; the
// final layer's activation is configurable by the caller of Apply.
type Stack struct {
	Layers []*HeteroConv
}

// NewStack builds a stack of layers with the given widths, e.g. dims =
// [128, 128, 128] builds two 128→128 layers.
func NewStack(p *nn.Params, prefix string, dims []int, rng *rand.Rand) *Stack {
	if len(dims) < 2 {
		panic("gnn: Stack needs at least two dims")
	}
	s := &Stack{}
	for i := 0; i+1 < len(dims); i++ {
		s.Layers = append(s.Layers,
			NewHeteroConv(p, fmt.Sprintf("%s.conv%d", prefix, i), dims[i], dims[i+1], rng))
	}
	return s
}

// Apply runs all layers; activateLast controls the final layer's ReLU.
func (s *Stack) Apply(t *autodiff.Tape, grads *nn.GradSet, h *autodiff.Var, g *graph.Graph, activateLast bool) *autodiff.Var {
	for i, l := range s.Layers {
		activate := activateLast || i+1 < len(s.Layers)
		h = l.Apply(t, grads, h, g, activate)
	}
	return h
}
