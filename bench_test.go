// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each macro-benchmark runs one quick-scale end-to-end pass of the
// corresponding experiment; micro-benchmarks cover the hot components.
//
// Score-faithful runs live behind cmd/experiments (-scale reduced|full);
// these benchmarks exist to measure and regression-track the cost of each
// experiment pipeline:
//
//	go test -bench=. -benchmem -benchtime=1x
package pythagoras_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	pythagoras "github.com/sematype/pythagoras"
	"github.com/sematype/pythagoras/internal/baselines"
	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/experiments"
	"github.com/sematype/pythagoras/internal/features"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/table"
)

// benchScale is a trimmed QuickScale so the full -bench=. sweep stays in
// single-digit minutes on one core.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Sports.NumTables = 44
	s.Sports.Domains = 3
	s.Git.NumTables = 60
	s.Git.MinSupport = 2
	s.Encoder = lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 512, Buckets: 1 << 12, Seed: 1}
	s.Pythagoras.Epochs = 12
	s.Pythagoras.Patience = 12
	s.Pythagoras.HiddenDim = 64
	s.Baseline.Epochs = 10
	s.Baseline.Patience = 10
	s.Sato.TrainOpts = s.Baseline
	s.Sato.Topics = 8
	return s
}

// BenchmarkTable1CorpusStats regenerates Table 1: both corpus generators
// plus their statistics.
func BenchmarkTable1CorpusStats(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.WriteTable1(io.Discard, s)
	}
}

// BenchmarkTable2SportsTables regenerates Table 2: all six models trained
// and scored on the SportsTables corpus.
func BenchmarkTable2SportsTables(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(s)
		if len(res.Rows) != 6 {
			b.Fatal("table 2 incomplete")
		}
	}
}

// BenchmarkTable3GitTables regenerates Table 3 on the GitTables Numeric
// corpus.
func BenchmarkTable3GitTables(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(s)
		if len(res.Rows) != 6 {
			b.Fatal("table 3 incomplete")
		}
	}
}

// BenchmarkFigure4PerTypeDiff regenerates Figure 4: the per-numerical-type
// Pythagoras vs Sato comparison (training both models, then the per-type
// win/tie/loss and boxplot statistics).
func BenchmarkFigure4PerTypeDiff(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(s)
		fig := experiments.Figure4(res)
		if fig.PythagorasWins+fig.Ties+fig.SatoWins == 0 {
			b.Fatal("figure 4 compared zero types")
		}
	}
}

// BenchmarkTable4Ablations regenerates Table 4: the eight Pythagoras graph
// and serialization variants on SportsTables.
func BenchmarkTable4Ablations(b *testing.B) {
	s := benchScale()
	s.Pythagoras.Epochs = 10
	s.Pythagoras.Patience = 10
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(s)
		if len(rows) != 8 {
			b.Fatal("table 4 incomplete")
		}
	}
}

// --- ablation benches for individual design choices (DESIGN.md §5) ---

// BenchmarkAblationGNNLayers measures training cost versus GNN depth (the
// 1-layer vs 2-layer design choice).
func BenchmarkAblationGNNLayers(b *testing.B) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 40, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
	rng := rand.New(rand.NewSource(1))
	train, val, _ := eval.TrainValTestSplit(len(c.Tables), rng)
	for _, layers := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "layers1", 2: "layers2", 3: "layers3"}[layers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(enc)
				cfg.GNNLayers = layers
				cfg.Epochs = 5
				cfg.Patience = 5
				if _, err := core.Train(c, train, val, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBatchSize measures throughput versus graph-union batch
// size.
func BenchmarkAblationBatchSize(b *testing.B) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 40, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
	rng := rand.New(rand.NewSource(1))
	train, val, _ := eval.TrainValTestSplit(len(c.Tables), rng)
	for _, bs := range []int{2, 8, 24} {
		b.Run(map[int]string{2: "batch2", 8: "batch8", 24: "batch24"}[bs], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(enc)
				cfg.BatchSize = bs
				cfg.Epochs = 5
				cfg.Patience = 5
				if _, err := core.Train(c, train, val, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- component micro-benchmarks ---

// BenchmarkFeatureExtraction measures the 192-feature extractor on a
// typical column.
func BenchmarkFeatureExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 50
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.ExtractNormalized(vals)
	}
}

// BenchmarkEncoderColumn measures frozen-LM encoding of one serialized
// column (cache defeated).
func BenchmarkEncoderColumn(b *testing.B) {
	enc := pythagoras.NewEncoder(pythagoras.DefaultEncoderConfig())
	tokens := []string{"[CLS]", "lebron", "james", "<num2e1>", "<num7e0>", "<num1e1>", "[SEP]"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeTokens(tokens)
	}
}

// BenchmarkGraphBuild measures table→heterogeneous-graph conversion
// (including feature extraction for V_ncf nodes).
func BenchmarkGraphBuild(b *testing.B) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 11, Seed: 1, MinRows: 20, MaxRows: 20, WeakNameProb: 0,
	})
	labels := c.LabelIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Build(c.Tables[i%len(c.Tables)], labels, graph.BuildOptions{})
	}
}

// benchModel trains one small model over the bench corpus (shared by the
// inference benchmarks).
func benchModel(b *testing.B) (*core.Model, *data.Corpus) {
	b.Helper()
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 33, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 5
	cfg.Patience = 5
	m, err := core.Train(c, []int{0, 1, 2, 3, 4, 5, 6, 7}, []int{8, 9}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, c
}

// BenchmarkPredictTable measures end-to-end single-table inference with a
// trained model — the legacy (pre-engine) serving path.
func BenchmarkPredictTable(b *testing.B) {
	m, c := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictTable(c.Tables[i%len(c.Tables)])
	}
}

// BenchmarkPredictBatch measures the staged inference engine's batched
// path at 1, 4 and 16 tables per call. Throughput (tables/sec) at
// batch 16 versus 16 sequential BenchmarkPredictTable iterations is the
// bench-trajectory number for the engine's batching + parallelism win.
func BenchmarkPredictBatch(b *testing.B) {
	m, c := benchModel(b)
	eng := infer.New(m)
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tables%d", size), func(b *testing.B) {
			tables := make([]*table.Table, size)
			for i := range tables {
				tables[i] = c.Tables[i%len(c.Tables)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.PredictBatch(tables)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "tables/sec")
		})
	}
}

// BenchmarkPredictBatchInstrumented is BenchmarkPredictBatch with a metrics
// registry attached — compare against the plain run to measure the
// observability overhead (budget: <2% at batch 16).
func BenchmarkPredictBatchInstrumented(b *testing.B) {
	m, c := benchModel(b)
	eng := infer.New(m, infer.WithMetrics(obs.NewRegistry()))
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tables%d", size), func(b *testing.B) {
			tables := make([]*table.Table, size)
			for i := range tables {
				tables[i] = c.Tables[i%len(c.Tables)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.PredictBatch(tables)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "tables/sec")
		})
	}
}

// BenchmarkObsOverhead measures the cost of the deep-observability layer on
// the batch-16 serving path: "obs_off" is the bare engine, "obs_on" adds
// everything a production `serve` runs per request — metrics registry,
// drift monitor, and a span tree offered to a 1%-sampling trace recorder.
// The two ns/op figures land side by side in BENCH_infer.json via
// `make bench-json`; budget is <5% overhead.
func BenchmarkObsOverhead(b *testing.B) {
	m, c := benchModel(b)
	tables := make([]*table.Table, 16)
	for i := range tables {
		tables[i] = c.Tables[i%len(c.Tables)]
	}

	b.Run("obs_off", func(b *testing.B) {
		eng := infer.New(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.PredictBatch(tables)
		}
	})

	b.Run("obs_on", func(b *testing.B) {
		reg := obs.NewRegistry()
		eng := infer.New(m, infer.WithMetrics(reg),
			infer.WithDrift(obs.NewDriftMonitor(m.ComputeDriftBaseline(c.Tables[:4]))))
		rec := obs.NewTraceRecorder(obs.TraceConfig{SampleRate: 0.01})
		root := obs.WithRecorder(obs.WithRegistry(context.Background(), reg), rec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, span := obs.StartSpan(root, "predict-batch")
			ctx, stage := obs.StartSpan(ctx, "infer")
			if _, err := eng.PredictBatchCtx(ctx, tables); err != nil {
				b.Fatal(err)
			}
			stage.End()
			span.End()
		}
	})
}

// BenchmarkTrainEpoch measures one data-parallel training epoch at 1, 4, 8
// and 16 workers over the same corpus and seed. The trained parameters are
// bit-identical at every worker count (see core's worker-count identity
// test); this benchmark tracks the wall-clock side of that trade — epoch
// time and epochs/sec versus parallelism — and feeds BENCH_train.json via
// `make bench-json`.
func BenchmarkTrainEpoch(b *testing.B) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 42, Seed: 11, MinRows: 10, MaxRows: 16, WeakNameProb: 0.1, Domains: 3,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
	train := make([]int, 40)
	for i := range train {
		train[i] = i
	}
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(enc)
				cfg.Epochs = 1
				cfg.TrainWorkers = workers
				if _, err := core.Train(c, train, []int{40, 41}, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "epochs/sec")
		})
	}
}

// BenchmarkBaselineSherlockFeaturize measures Sherlock's feature pipeline
// per table.
func BenchmarkBaselineSherlockFeaturize(b *testing.B) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 11, Seed: 1, MinRows: 20, MaxRows: 20, WeakNameProb: 0,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7})
	f := baselines.NewSherlockFeaturizer(enc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FeaturizeTable(c.Tables[i%len(c.Tables)])
	}
}

// BenchmarkSLORecord measures the per-request cost of SLO accounting — the
// hot-path tax every served request pays in the access-log middleware
// (DESIGN.md §13). Two objectives (availability + latency), mixed outcomes.
func BenchmarkSLORecord(b *testing.B) {
	eng := slo.New(slo.DefaultObjectives(0.999, 250*time.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Record(time.Duration(i%400)*time.Millisecond, i%10 != 0)
	}
}
