package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, file)
}

func TestLinterAcceptsEndedSpans(t *testing.T) {
	src := `package p
func ok(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "a")
	defer span.End()
	_, inner := obs.StartSpan(ctx, "b")
	inner.End()
}
func closureEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "c")
	defer func() { span.End() }()
}
`
	if v := check(t, src); len(v) != 0 {
		t.Fatalf("clean source flagged: %v", v)
	}
}

func TestLinterFlagsLeakedSpan(t *testing.T) {
	src := `package p
func leak(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "a")
	_ = span
}
`
	v := check(t, src)
	if len(v) != 1 || !strings.Contains(v[0], `"span"`) || !strings.Contains(v[0], "leak") {
		t.Fatalf("leaked span not flagged correctly: %v", v)
	}
}

func TestLinterFlagsDiscardedSpan(t *testing.T) {
	src := `package p
func discard(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "a")
}
`
	v := check(t, src)
	if len(v) != 1 || !strings.Contains(v[0], "discarded") {
		t.Fatalf("discarded span not flagged: %v", v)
	}
}

func TestLinterSeparateFunctionsDoNotShareEnds(t *testing.T) {
	src := `package p
func a(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "a")
	_ = span
}
func b(span *obs.Span) { span.End() }
`
	if v := check(t, src); len(v) != 1 {
		t.Fatalf("End in another function must not satisfy the check: %v", v)
	}
}

func TestRunWalksTree(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("clean.go", "package p\nfunc ok(ctx context.Context) {\n\t_, s := obs.StartSpan(ctx, \"a\")\n\ts.End()\n}\n")
	write("notes.txt", "not go")
	// Skipped directories must not be linted even when they contain leaks.
	write("testdata/leak.go", "package p\nfunc leak(ctx context.Context) {\n\t_, s := obs.StartSpan(ctx, \"a\")\n\t_ = s\n}\n")

	var out strings.Builder
	if code := run(dir, &out); code != 0 {
		t.Fatalf("clean tree exit = %d, output:\n%s", code, out.String())
	}

	write("leak.go", "package p\nfunc leak(ctx context.Context) {\n\t_, s := obs.StartSpan(ctx, \"a\")\n\t_ = s\n}\n")
	out.Reset()
	if code := run(dir, &out); code != 1 {
		t.Fatalf("leaking tree exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "leak.go") || !strings.Contains(out.String(), "1 span(s)") {
		t.Fatalf("violation report missing detail:\n%s", out.String())
	}

	write("broken.go", "package p\nfunc {")
	out.Reset()
	if code := run(dir, &out); code != 2 {
		t.Fatalf("unparsable tree exit = %d, want 2", code)
	}
}
