// Command lintspans is the repo's span-hygiene linter (`make lint-spans`):
// every obs.StartSpan call must bind its span to a named variable, and that
// variable must have a reachable .End() call (directly, deferred, or inside
// a closure) within the same top-level function. A span that is never ended
// leaks an unfinished trace — its request never reaches the recorder and
// its latency histogram never records — so the linter fails the build
// instead.
//
// Usage:
//
//	go run ./cmd/lintspans [dir]
//
// dir defaults to ".". The walk skips testdata, vendored trees and
// generated corpora. Exit status 1 when any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	os.Exit(run(root, os.Stderr))
}

// run walks root, lints every non-vendored .go file, and reports
// violations on stderr. Exit codes: 0 clean, 1 violations, 2 walk/parse
// failure.
func run(root string, stderr io.Writer) int {
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || name == "corpora" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		violations = append(violations, checkFile(fset, file)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "lintspans:", err)
		return 2
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, v)
		}
		fmt.Fprintf(stderr, "lintspans: %d span(s) started but never ended\n", len(violations))
		return 1
	}
	return 0
}

// checkFile inspects each top-level function: every span bound from a
// StartSpan call must see a matching <var>.End() somewhere in that
// function's body (closures included — a deferred func(){span.End()}()
// counts).
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var violations []string
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		type started struct {
			name string
			pos  token.Pos
		}
		var spans []started
		ended := map[string]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !isStartSpan(rhs) {
						continue
					}
					// StartSpan returns (ctx, span): with one rhs the span is
					// the last lhs; a 1:1 multi-assign pairs lhs[i].
					lhs := n.Lhs[len(n.Lhs)-1]
					if len(n.Rhs) == len(n.Lhs) {
						lhs = n.Lhs[i]
					}
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						spans = append(spans, started{"_", rhs.Pos()})
						continue
					}
					spans = append(spans, started{id.Name, rhs.Pos()})
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" && len(n.Args) == 0 {
					if id, ok := sel.X.(*ast.Ident); ok {
						ended[id.Name] = true
					}
				}
			}
			return true
		})
		for _, s := range spans {
			if s.name == "_" {
				violations = append(violations, fmt.Sprintf(
					"%s: span from StartSpan discarded with _ (it can never be ended)", fset.Position(s.pos)))
				continue
			}
			if !ended[s.name] {
				violations = append(violations, fmt.Sprintf(
					"%s: span %q started but %s.End() never called in %s", fset.Position(s.pos), s.name, s.name, fn.Name.Name))
			}
		}
	}
	return violations
}

// isStartSpan matches obs.StartSpan(...) and StartSpan(...) call
// expressions.
func isStartSpan(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "StartSpan"
	case *ast.Ident:
		return fun.Name == "StartSpan"
	}
	return false
}
