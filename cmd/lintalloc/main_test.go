package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, file)
}

func TestLinterAcceptsIntoForms(t *testing.T) {
	src := `package p
func ok(out, a, b *tensor.Matrix) {
	tensor.MatMulInto(out, a, b)
	tensor.MatMulAddInto(out, a, b)
	tensor.MatMulTransposeAInto(out, a, b)
	tensor.MatMulTransposeAAddInto(out, a, b)
	tensor.MatMulTransposeBInto(out, a, b)
	tensor.MatMulTransposeBAddInto(out, a, b)
}
`
	if v := check(t, src); len(v) != 0 {
		t.Fatalf("Into forms flagged: %v", v)
	}
}

func TestLinterFlagsAllocatingForms(t *testing.T) {
	src := `package p
func bad(a, b *tensor.Matrix) *tensor.Matrix {
	x := tensor.MatMul(a, b)
	y := tensor.MatMulTransposeA(a, b)
	return tensor.MatMulTransposeB(x, y)
}
`
	v := check(t, src)
	if len(v) != 3 {
		t.Fatalf("want 3 violations, got %v", v)
	}
	for _, want := range []string{"MatMul ", "MatMulTransposeA ", "MatMulTransposeB "} {
		found := false
		for _, line := range v {
			if strings.Contains(line, "tensor."+strings.TrimSpace(want)+" ") {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions tensor.%s: %v", strings.TrimSpace(want), v)
		}
	}
}

func TestLinterIgnoresOtherReceivers(t *testing.T) {
	// Only the tensor package's conveniences are forbidden; a method or a
	// different package with the same name is fine.
	src := `package p
func ok(m mat.Helper) {
	mat.MatMul(nil, nil)
	m.MatMul(nil, nil)
}
`
	if v := check(t, src); len(v) != 0 {
		t.Fatalf("unrelated MatMul flagged: %v", v)
	}
}

// TestRepoIsClean runs the linter over the actual repository — the same
// invocation `make lint-alloc` performs.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if code := run(root, os.Stderr); code != 0 {
		t.Fatalf("lintalloc over repo root exited %d", code)
	}
}
