// Command lintalloc is the repo's hot-path allocation linter
// (`make lint-alloc`): inside the packages that sit on the training and
// inference hot paths — internal/autodiff, internal/gnn, internal/infer —
// the allocating product conveniences tensor.MatMul, tensor.MatMulTransposeA
// and tensor.MatMulTransposeB are forbidden. Those packages run per step and
// per request; every product there must write into arena- or caller-owned
// storage via the Into/AddInto forms, or the substrate's zero-allocation
// guarantee (pinned by testing.AllocsPerRun regression tests) silently
// erodes. Cold paths and tests may use the convenience forms freely.
//
// Usage:
//
//	go run ./cmd/lintalloc [dir]
//
// dir defaults to ".". Test files are exempt. Exit status 1 when any
// violation is found, 2 on walk/parse failure.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// restrictedDirs are the hot-path packages (relative to the repo root) in
// which allocating product calls fail the build.
var restrictedDirs = []string{
	filepath.Join("internal", "autodiff"),
	filepath.Join("internal", "gnn"),
	filepath.Join("internal", "infer"),
}

// forbidden are the allocating conveniences; each names its required
// replacement in the diagnostic.
var forbidden = map[string]string{
	"MatMul":           "MatMulInto/MatMulAddInto",
	"MatMulTransposeA": "MatMulTransposeAInto/MatMulTransposeAAddInto",
	"MatMulTransposeB": "MatMulTransposeBInto/MatMulTransposeBAddInto",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	os.Exit(run(root, os.Stderr))
}

func run(root string, stderr io.Writer) int {
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range restrictedDirs {
		base := filepath.Join(root, dir)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) && path == base {
					return filepath.SkipDir // package may not exist in a partial tree
				}
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == "testdata" || name == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			violations = append(violations, checkFile(fset, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "lintalloc:", err)
			return 2
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, v)
		}
		fmt.Fprintf(stderr, "lintalloc: %d allocating product call(s) on the hot path\n", len(violations))
		return 1
	}
	return 0
}

// checkFile reports every call of the form tensor.<forbidden>(...) in file.
// The check is name-based (the tensor package is always imported under its
// own name in this repo), matching lintspans' approach: parsing without type
// information keeps the linter dependency-free and fast.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "tensor" {
			return true
		}
		if repl, bad := forbidden[sel.Sel.Name]; bad {
			pos := fset.Position(call.Pos())
			out = append(out, fmt.Sprintf("%s: tensor.%s allocates its result; use %s on the hot path",
				pos, sel.Sel.Name, repl))
		}
		return true
	})
	return out
}
