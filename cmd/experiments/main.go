// Command experiments regenerates the paper's evaluation: Table 1 (corpus
// statistics), Table 2 (SportsTables comparison), Table 3 (GitTables
// Numeric comparison), Figure 4 (per-type Pythagoras vs Sato) and Table 4
// (ablations).
//
// Usage:
//
//	experiments -exp all                 # everything at reduced scale
//	experiments -exp table2 -scale full  # one experiment at paper scale
//	experiments -exp table1,table4 -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/sematype/pythagoras/internal/experiments"
	"github.com/sematype/pythagoras/internal/obs/logz"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,fig4,table4,all")
	scaleName := flag.String("scale", "reduced", "experiment scale: quick, reduced, full")
	out := flag.String("out", "", "also write results to this file")
	md := flag.String("markdown", "", "write a markdown report (EXPERIMENTS.md section) to this file")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	logFormat := flag.String("log-format", "text", "progress log format: text or json")
	trainWorkers := flag.Int("train-workers", 0, "worker goroutines per training run (0 = all CPUs; scores are identical at any count)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "reduced":
		scale = experiments.ReducedScale()
	case "full":
		scale = experiments.FullScale()
	default:
		log.Fatalf("unknown scale %q (want quick, reduced or full)", *scaleName)
	}
	if !*quiet {
		scale.Logf = log.Printf
		switch *logFormat {
		case "json":
			scale.Logf = logz.New(os.Stderr, logz.Info).With("component", "experiments").Printf()
		case "text":
		default:
			log.Fatalf("invalid -log-format %q (want text or json)", *logFormat)
		}
	}
	scale.Pythagoras.TrainWorkers = *trainWorkers

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	fmt.Fprintf(w, "Pythagoras reproduction — scale: %s, seeds: %v\n\n", scale.Name, scale.Seeds)

	if all || want["table1"] {
		experiments.WriteTable1(w, scale)
		fmt.Fprintln(w)
	}

	var t2, t3 *experiments.ComparisonResult
	var fig *experiments.Figure4Result
	var t4rows []experiments.AblationRow
	if all || want["table2"] || want["fig4"] {
		t2 = experiments.Table2(scale)
		experiments.WriteComparison(w, "Table 2: Experimental results on the SportsTables corpus", t2)
		name, best := experiments.BestBaselineNumeric(t2)
		if row, ok := experiments.RowByModel(t2, "Pythagoras"); ok && best > 0 {
			fmt.Fprintf(w, "  → Pythagoras vs best baseline (%s) on numeric: %+.1f%% weighted F1\n",
				name, 100*(row.WeightedNum-best)/best)
		}
		fmt.Fprintln(w)
	}

	if all || want["table3"] {
		t3 = experiments.Table3(scale)
		experiments.WriteComparison(w, "Table 3: Experimental results on the GitTables corpus", t3)
		name, best := experiments.BestBaselineNumeric(t3)
		if row, ok := experiments.RowByModel(t3, "Pythagoras"); ok && best > 0 {
			fmt.Fprintf(w, "  → Pythagoras vs best baseline (%s) on numeric: %+.1f%% weighted F1\n",
				name, 100*(row.WeightedNum-best)/best)
		}
		fmt.Fprintln(w)
	}

	if all || want["fig4"] {
		f := experiments.Figure4(t2)
		fig = &f
		experiments.WriteFigure4(w, f)
		fmt.Fprintln(w)
	}

	if all || want["table4"] {
		t4rows = experiments.Table4(scale)
		experiments.WriteTable4(w, t4rows)
		fmt.Fprintln(w)
	}

	if claims := experiments.CheckShapes(t2, t3, fig, t4rows); len(claims) > 0 {
		fmt.Fprintln(w, experiments.FormatShapes(claims))
	}

	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			log.Fatal(err)
		}
		experiments.WriteMarkdown(f, scale, t2, t3, fig, t4rows)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
