// Command loadgen is the open-loop load harness for the Pythagoras serving
// path (internal/loadgen, DESIGN.md §13).
//
// Two modes:
//
//   - Against a running server: point -target at it and pick a profile.
//
//     loadgen -target http://127.0.0.1:8080 -profile soak -qps 200 -duration 30s
//
//   - Self-contained (-target empty): trains a small model in-process,
//     starts an httptest server with a bounded admission queue and a
//     deterministic injected service time, and drives load at it. This is
//     what `make loadtest` runs to produce BENCH_serve.json — no external
//     process, no network, results reproducible from one seed.
//
// -suite runs the soak and burst profiles back to back and writes one
// combined JSON document (default BENCH_serve.json); otherwise the single
// profile's report goes to -out or stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/faultinject"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/loadgen"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/server"
)

func main() {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the server under test (empty = self-contained in-process server)")
	profile := fs.String("profile", "soak", "load profile: soak, burst, or ramp")
	qps := fs.Float64("qps", 200, "base offered rate")
	duration := fs.Duration("duration", 10*time.Second, "measured window")
	warmup := fs.Duration("warmup", 2*time.Second, "load offered before the measured window, discarded from results")
	arrival := fs.String("arrival", loadgen.ArrivalPoisson, "arrival process: fixed or poisson")
	rampTo := fs.Float64("ramp-to", 0, "ramp profile: final rate (ramp rises linearly from -qps)")
	burstQPS := fs.Float64("burst-qps", 0, "burst profile: spike rate (default 5x -qps)")
	burstEvery := fs.Duration("burst-every", 5*time.Second, "burst profile: spike period")
	burstLen := fs.Duration("burst-len", time.Second, "burst profile: spike length")
	batchFraction := fs.Float64("batch-fraction", 0.2, "fraction of arrivals sent to /v1/predict-batch")
	batchSize := fs.Int("batch-size", 8, "tables per batch request")
	seed := fs.Int64("seed", 1, "seed for the workload corpus and every arrival/mix draw")
	corpus := fs.Int("corpus", 24, "distinct tables in the workload corpus")
	honorRetryAfter := fs.Bool("honor-retry-after", false, "suppress arrivals until the server's Retry-After advice expires")
	out := fs.String("out", "", "write the JSON report here (default: stdout; -suite default: BENCH_serve.json)")
	suite := fs.Bool("suite", false, "run the soak+burst benchmark suite and write one combined document")
	maxInflight := fs.Int("max-inflight", 4, "self-contained server: admission bound (as many again may queue)")
	serviceTime := fs.Duration("service-time", 25*time.Millisecond, "self-contained server: injected per-request service time")
	fs.Parse(os.Args[1:])

	ctx := context.Background()
	base := loadgen.Config{
		Target:          *target,
		BatchFraction:   *batchFraction,
		BatchSize:       *batchSize,
		Seed:            *seed,
		CorpusTables:    *corpus,
		HonorRetryAfter: *honorRetryAfter,
		ReadyTimeout:    30 * time.Second,
		FetchSLO:        true,
	}

	var startWatch func()
	if *target == "" {
		log.Printf("loadgen: no -target, starting self-contained server (max-inflight=%d, service-time=%s)",
			*maxInflight, *serviceTime)
		ts, srv, err := selfContained(*maxInflight, *serviceTime)
		if err != nil {
			log.Fatal(err)
		}
		defer ts.Close()
		base.Target = ts.URL
		base.Client = ts.Client()
		// The suite's soak_watchdog row re-runs the soak with the anomaly
		// watchdog's tick loop live, so the overhead of rule evaluation is
		// on record next to the baseline soak. Only possible self-contained:
		// an external server owns its own watchdog.
		startWatch = func() { srv.Watchdog().Start(ctx) }
	}

	if *suite {
		path := *out
		if path == "" {
			path = "BENCH_serve.json"
		}
		if err := runSuite(ctx, base, *qps, *duration, *warmup, path, startWatch); err != nil {
			log.Fatal(err)
		}
		return
	}

	base.Profile = buildProfile(*profile, *arrival, *qps, *rampTo, *burstQPS, *burstEvery, *burstLen, *duration, *warmup)
	rep, err := loadgen.Run(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeJSON(*out, rep); err != nil {
		log.Fatal(err)
	}
}

func buildProfile(name, arrival string, qps, rampTo, burstQPS float64, burstEvery, burstLen, dur, warmup time.Duration) loadgen.Profile {
	var p loadgen.Profile
	switch name {
	case "soak":
		p = loadgen.Soak(qps, dur, warmup)
	case "burst":
		if burstQPS <= 0 {
			burstQPS = 5 * qps
		}
		p = loadgen.Burst(qps, burstQPS, burstEvery, burstLen, dur, warmup)
	case "ramp":
		if rampTo <= 0 {
			rampTo = 3 * qps
		}
		p = loadgen.Ramp(qps, rampTo, dur, warmup)
	default:
		log.Fatalf("loadgen: unknown profile %q (want soak, burst, or ramp)", name)
	}
	p.Arrival = arrival
	return p
}

// runSuite is the BENCH_serve.json producer: a steady soak at the base rate,
// then the same base with periodic spikes past capacity so shedding and the
// burn-rate response are on record next to the healthy numbers — and, when
// self-contained, the soak again with the watchdog loop ticking
// (soak_watchdog) to pin its overhead.
func runSuite(ctx context.Context, base loadgen.Config, qps float64, dur, warmup time.Duration, path string, startWatch func()) error {
	type suiteDoc struct {
		Generated  string                     `json:"generated"`
		GoVersion  string                     `json:"go_version"`
		GOMAXPROCS int                        `json:"gomaxprocs"`
		NumCPU     int                        `json:"num_cpu"`
		Seed       int64                      `json:"seed"`
		Profiles   map[string]*loadgen.Report `json:"profiles"`
	}
	doc := suiteDoc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       base.Seed,
		Profiles:   map[string]*loadgen.Report{},
	}
	type stage struct {
		p      loadgen.Profile
		before func()
	}
	stages := []stage{
		{p: loadgen.Soak(qps, dur, warmup)},
		{p: loadgen.Burst(qps, 5*qps, 5*time.Second, time.Second, dur, warmup)},
	}
	if startWatch != nil {
		wp := loadgen.Soak(qps, dur, warmup)
		wp.Name = "soak_watchdog"
		stages = append(stages, stage{p: wp, before: startWatch})
	}
	for _, st := range stages {
		if st.before != nil {
			st.before()
		}
		p := st.p
		cfg := base
		cfg.Profile = p
		log.Printf("loadgen: profile %s (%.0f qps, %s + %s warmup)", p.Name, p.QPS, p.Duration, p.Warmup)
		rep, err := loadgen.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("profile %s: %w", p.Name, err)
		}
		log.Printf("loadgen: %s done — offered %.1f qps, achieved %.1f, shed %.1f%%, p99 %.1fms",
			p.Name, rep.OfferedQPS, rep.AchievedQPS, 100*rep.ShedRate, rep.Latency.P99Ms)
		doc.Profiles[p.Name] = rep
	}
	if err := writeJSON(path, doc); err != nil {
		return err
	}
	log.Printf("loadgen: wrote %s", path)
	return nil
}

// selfContained trains a small model and serves it behind a tight admission
// bound and a deterministic injected service time, so one process can
// demonstrate the full control loop: offered load → shedding → SLO burn.
// The app server is returned alongside so the suite can start its watchdog.
func selfContained(maxInflight int, serviceTime time.Duration) (*httptest.Server, *server.Server, error) {
	c := data.GenerateSportsTables(data.SportsConfig{
		NumTables: 22, Seed: 11, MinRows: 5, MaxRows: 8, WeakNameProb: 0.1, Domains: 2,
	})
	enc := lm.NewEncoder(lm.Config{Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 128, Buckets: 1 << 12, Seed: 7})
	cfg := core.DefaultConfig(enc)
	cfg.Epochs = 3
	cfg.Patience = 3
	m, err := core.Train(c, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}, cfg)
	if err != nil {
		return nil, nil, err
	}
	opts := []server.Option{
		server.WithMaxInflight(maxInflight),
		server.WithSLO(slo.New(slo.DefaultObjectives(server.DefaultSLOTarget, server.DefaultSLOLatency))),
		server.WithWatchInterval(time.Second),
	}
	if serviceTime > 0 {
		opts = append(opts, server.WithFaults(
			faultinject.New().On(faultinject.ServerHandle, faultinject.Sleep(serviceTime))))
	}
	srv := server.New(m, 0, opts...)
	return httptest.NewServer(srv), srv, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
