package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/loadgen"
)

func TestBuildProfile(t *testing.T) {
	p := buildProfile("soak", loadgen.ArrivalFixed, 100, 0, 0, 5*time.Second, time.Second, 10*time.Second, 2*time.Second)
	if p.Name != "soak" || p.QPS != 100 || p.Arrival != loadgen.ArrivalFixed || p.Warmup != 2*time.Second {
		t.Fatalf("soak profile = %+v", p)
	}
	// Burst and ramp default their shape parameters off the base rate.
	p = buildProfile("burst", loadgen.ArrivalPoisson, 100, 0, 0, 5*time.Second, time.Second, 10*time.Second, 0)
	if p.BurstQPS != 500 || p.BurstEvery != 5*time.Second {
		t.Fatalf("burst defaults = %+v", p)
	}
	p = buildProfile("burst", loadgen.ArrivalPoisson, 100, 0, 800, 5*time.Second, time.Second, 10*time.Second, 0)
	if p.BurstQPS != 800 {
		t.Fatalf("explicit burst rate ignored: %+v", p)
	}
	p = buildProfile("ramp", loadgen.ArrivalPoisson, 100, 0, 0, 0, 0, 10*time.Second, 0)
	if p.RampTo != 300 {
		t.Fatalf("ramp default = %+v", p)
	}
	p = buildProfile("ramp", loadgen.ArrivalPoisson, 100, 250, 0, 0, 0, 10*time.Second, 0)
	if p.RampTo != 250 {
		t.Fatalf("explicit ramp target ignored: %+v", p)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := writeJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("report file does not end in a newline")
	}
	var v map[string]int
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v["a"] != 1 {
		t.Fatalf("round-trip = %v", v)
	}
}

// TestRunSuiteSelfContained is the suite smoke test: a short run against
// the in-process server must produce all three profile rows — soak, burst,
// and the watchdog-enabled soak — in one well-formed document.
func TestRunSuiteSelfContained(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and drives ~1s of load")
	}
	ts, srv, err := selfContained(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := loadgen.Config{
		Target:       ts.URL,
		Client:       ts.Client(),
		Seed:         1,
		CorpusTables: 4,
		ReadyTimeout: 10 * time.Second,
		FetchSLO:     true,
	}
	path := filepath.Join(t.TempDir(), "serve.json")
	started := false
	startWatch := func() { started = true; srv.Watchdog().Start(ctx) }
	if err := runSuite(ctx, base, 40, 300*time.Millisecond, 0, path, startWatch); err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("suite never started the watchdog")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Profiles map[string]*loadgen.Report `json:"profiles"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("suite doc: %v", err)
	}
	for _, name := range []string{"soak", "burst", "soak_watchdog"} {
		rep := doc.Profiles[name]
		if rep == nil {
			t.Fatalf("profile %q missing from suite doc", name)
		}
		if rep.Completed == 0 || rep.AchievedQPS <= 0 {
			t.Fatalf("profile %q empty: %+v", name, rep)
		}
	}
	// The watchdog loop is live (1s interval — the short profile may end
	// before the first tick, so poll rather than assert instantly).
	deadline := time.Now().Add(3 * time.Second)
	for srv.Metrics().Snapshot().Counters["watch.ticks"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog loop never ticked")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
