package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sematype/pythagoras/internal/loadgen"
)

func TestBuildProfile(t *testing.T) {
	p := buildProfile("soak", loadgen.ArrivalFixed, 100, 0, 0, 5*time.Second, time.Second, 10*time.Second, 2*time.Second)
	if p.Name != "soak" || p.QPS != 100 || p.Arrival != loadgen.ArrivalFixed || p.Warmup != 2*time.Second {
		t.Fatalf("soak profile = %+v", p)
	}
	// Burst and ramp default their shape parameters off the base rate.
	p = buildProfile("burst", loadgen.ArrivalPoisson, 100, 0, 0, 5*time.Second, time.Second, 10*time.Second, 0)
	if p.BurstQPS != 500 || p.BurstEvery != 5*time.Second {
		t.Fatalf("burst defaults = %+v", p)
	}
	p = buildProfile("burst", loadgen.ArrivalPoisson, 100, 0, 800, 5*time.Second, time.Second, 10*time.Second, 0)
	if p.BurstQPS != 800 {
		t.Fatalf("explicit burst rate ignored: %+v", p)
	}
	p = buildProfile("ramp", loadgen.ArrivalPoisson, 100, 0, 0, 0, 0, 10*time.Second, 0)
	if p.RampTo != 300 {
		t.Fatalf("ramp default = %+v", p)
	}
	p = buildProfile("ramp", loadgen.ArrivalPoisson, 100, 250, 0, 0, 0, 10*time.Second, 0)
	if p.RampTo != 250 {
		t.Fatalf("explicit ramp target ignored: %+v", p)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := writeJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("report file does not end in a newline")
	}
	var v map[string]int
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v["a"] != 1 {
		t.Fatalf("round-trip = %v", v)
	}
}
