// Command datagen generates the synthetic SportsTables and GitTables
// Numeric corpora, persists them as CSV trees with label sidecars, and
// prints the Table 1 statistics.
//
// Usage:
//
//	datagen -corpus sports -out ./sportstables        # full paper scale
//	datagen -corpus git -tables 500 -out ./gittables  # custom size
//	datagen -corpus both -stats-only                  # just Table 1
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/table"
)

func main() {
	corpus := flag.String("corpus", "both", "which corpus: sports, git, both")
	out := flag.String("out", "./corpora", "output directory")
	tables := flag.Int("tables", 0, "override table count (0 = paper scale)")
	seed := flag.Int64("seed", 0, "override RNG seed (0 = default)")
	statsOnly := flag.Bool("stats-only", false, "print Table 1 statistics without writing files")
	flag.Parse()

	if *corpus == "sports" || *corpus == "both" {
		cfg := data.DefaultSportsConfig()
		if *tables > 0 {
			cfg.NumTables = *tables
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		c := data.GenerateSportsTables(cfg)
		if err := c.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SportsTables:      %s\n", c.ComputeStats())
		if !*statsOnly {
			dir := filepath.Join(*out, "sportstables")
			if err := table.SaveDir(dir, c.Tables); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %d tables to %s\n", len(c.Tables), dir)
		}
	}

	if *corpus == "git" || *corpus == "both" {
		cfg := data.DefaultGitConfig()
		if *tables > 0 {
			cfg.NumTables = *tables
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		c := data.GenerateGitTables(cfg)
		if err := c.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GitTables Numeric: %s\n", c.ComputeStats())
		if !*statsOnly {
			dir := filepath.Join(*out, "gittables")
			if err := table.SaveDir(dir, c.Tables); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %d tables to %s\n", len(c.Tables), dir)
		}
	}
}
