// Command pythagoras trains, evaluates and applies the Pythagoras semantic
// type detection model from the command line.
//
// Subcommands:
//
//	pythagoras train -data ./corpus -model model.bin
//	pythagoras eval  -data ./corpus -model model.bin
//	pythagoras predict -data ./lake -model model.bin [-table id]
//	pythagoras serve -model model.bin -addr :8080
//
// -data points at a directory of <id>.csv files with <id>.labels.json
// sidecars (as written by datagen or any conforming tool). Prediction works
// on unlabeled CSVs too.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/obs"
	"github.com/sematype/pythagoras/internal/obs/logz"
	"github.com/sematype/pythagoras/internal/obs/slo"
	"github.com/sematype/pythagoras/internal/obs/watch"
	"github.com/sematype/pythagoras/internal/par"
	"github.com/sematype/pythagoras/internal/server"
	"github.com/sematype/pythagoras/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pythagoras {train|eval|predict|serve} [flags]")
	os.Exit(2)
}

// encoderFlags adds the shared encoder configuration flags.
func encoderFlags(fs *flag.FlagSet) (*int, *int) {
	dim := fs.Int("dim", 64, "frozen encoder width (768 = paper scale)")
	layers := fs.Int("lm-layers", 2, "frozen encoder depth")
	return dim, layers
}

func buildEncoder(dim, layers int) *lm.Encoder {
	heads := 4
	for dim%heads != 0 {
		heads--
	}
	return lm.NewEncoder(lm.Config{
		Dim: dim, Layers: layers, Heads: heads, FFNDim: 2 * dim,
		MaxLen: 512, Buckets: 1 << 15, Seed: 20240325,
	})
}

// structuredLogger maps -log-format to a logz logger on stderr: "json"
// returns one, "text" returns nil (keep the stdlib logger), anything else
// is a flag error.
func structuredLogger(format string) *logz.Logger {
	switch format {
	case "json":
		return logz.New(os.Stderr, logz.Info)
	case "text":
		return nil
	default:
		log.Fatalf("invalid -log-format %q (want text or json)", format)
		return nil
	}
}

func loadCorpus(dir string) *data.Corpus {
	tables, err := table.LoadDir(dir)
	if err != nil {
		log.Fatalf("load corpus: %v", err)
	}
	c := &data.Corpus{Name: dir, Tables: tables}
	c.BuildVocabulary()
	return c
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataDir := fs.String("data", "", "corpus directory (required)")
	modelPath := fs.String("model", "pythagoras-model.bin", "output model path")
	epochs := fs.Int("epochs", 150, "training epochs")
	lr := fs.Float64("lr", 1e-2, "initial learning rate (linearly decayed)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "training worker goroutines (0 = all CPUs; results are identical at any count)")
	metrics := fs.Bool("metrics", false, "stream a JSON metrics snapshot to stdout after every epoch")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	dim, layers := encoderFlags(fs)
	fs.Parse(args)
	if *dataDir == "" {
		log.Fatal("train: -data is required")
	}
	slog := structuredLogger(*logFormat)

	c := loadCorpus(*dataDir)
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	train, val, test := eval.TrainValTestSplit(len(c.Tables), rng)

	cfg := core.DefaultConfig(buildEncoder(*dim, *layers))
	cfg.Epochs = *epochs
	cfg.LearningRate = *lr
	cfg.Seed = *seed
	cfg.TrainWorkers = *workers
	cfg.Logf = log.Printf
	if slog != nil {
		cfg.Logf = slog.With("component", "train").Printf()
	}
	if *metrics {
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		obs.RegisterRuntimeMetrics(reg)
		par.RegisterMetrics(reg)
		// Piggyback on the trainer's per-epoch progress line: every time one
		// is emitted, follow it with a machine-readable snapshot on stdout.
		inner := cfg.Logf
		cfg.Logf = func(format string, args ...any) {
			inner(format, args...)
			if strings.HasPrefix(format, "pythagoras: epoch") {
				if raw, err := json.Marshal(reg.Snapshot()); err == nil {
					fmt.Println(string(raw))
				}
			}
		}
	}

	m, err := core.Train(c, train, val, cfg)
	if err != nil {
		log.Fatal(err)
	}
	split, _ := m.Evaluate(c, test)
	fmt.Printf("test weighted F1: numeric=%.3f non-numeric=%.3f overall=%.3f\n",
		split.Numeric.WeightedF1, split.NonNumeric.WeightedF1, split.Overall.WeightedF1)
	fmt.Printf("test macro F1:    numeric=%.3f non-numeric=%.3f overall=%.3f\n",
		split.Numeric.MacroF1, split.NonNumeric.MacroF1, split.Overall.MacroF1)
	if err := m.SaveFile(*modelPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s (%d parameters)\n", *modelPath, m.Params().Count())

	// Write the drift baseline sidecar: the model's own prediction
	// distribution over its training tables, the reference `serve` compares
	// live traffic against (DESIGN.md §11).
	trainTables := make([]*table.Table, len(train))
	for i, idx := range train {
		trainTables[i] = c.Tables[idx]
	}
	sidecar := core.DriftSidecarPath(*modelPath)
	if err := core.SaveDriftBaseline(sidecar, m.ComputeDriftBaseline(trainTables)); err != nil {
		log.Fatalf("write drift baseline: %v", err)
	}
	fmt.Printf("drift baseline saved to %s\n", sidecar)
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dataDir := fs.String("data", "", "corpus directory (required)")
	modelPath := fs.String("model", "pythagoras-model.bin", "model path")
	report := fs.Int("report", 0, "print a per-class report for the top N types by support")
	confusions := fs.Int("confusions", 0, "print the top N most frequent misclassification pairs")
	dim, layers := encoderFlags(fs)
	fs.Parse(args)
	if *dataDir == "" {
		log.Fatal("eval: -data is required")
	}

	m, err := core.LoadFile(*modelPath, core.Config{Encoder: buildEncoder(*dim, *layers)})
	if err != nil {
		log.Fatal(err)
	}
	c := loadCorpus(*dataDir)
	idx := make([]int, len(c.Tables))
	for i := range idx {
		idx[i] = i
	}
	// Re-map corpus labels into the model's vocabulary.
	c.Types = m.Types()
	c.LabelIndex = map[string]int{}
	for i, st := range c.Types {
		c.LabelIndex[st] = i
	}
	split, preds := infer.New(m).Evaluate(c, idx)
	fmt.Printf("columns scored: %d\n", len(preds))
	fmt.Printf("weighted F1: numeric=%.3f non-numeric=%.3f overall=%.3f\n",
		split.Numeric.WeightedF1, split.NonNumeric.WeightedF1, split.Overall.WeightedF1)
	fmt.Printf("macro F1:    numeric=%.3f non-numeric=%.3f overall=%.3f\n",
		split.Numeric.MacroF1, split.NonNumeric.MacroF1, split.Overall.MacroF1)
	if *report > 0 {
		fmt.Println()
		fmt.Print(eval.Report(split.Overall, eval.ReportOptions{
			ClassNames: m.Types(), SortBySupport: true, TopK: *report,
		}))
	}
	if *confusions > 0 {
		fmt.Println("\ntop confusions (true → predicted):")
		for _, cp := range eval.TopConfusions(preds, *confusions) {
			fmt.Printf("  %3d×  %-45s → %s\n", cp.Count, m.Types()[cp.True], m.Types()[cp.Pred])
		}
	}
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	dataDir := fs.String("data", "", "directory of CSVs (required)")
	modelPath := fs.String("model", "pythagoras-model.bin", "model path")
	tableID := fs.String("table", "", "predict only this table id")
	dim, layers := encoderFlags(fs)
	fs.Parse(args)
	if *dataDir == "" {
		log.Fatal("predict: -data is required")
	}

	m, err := core.LoadFile(*modelPath, core.Config{Encoder: buildEncoder(*dim, *layers)})
	if err != nil {
		log.Fatal(err)
	}
	all, err := table.LoadDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	var tables []*table.Table
	for _, t := range all {
		if *tableID == "" || t.ID == *tableID {
			tables = append(tables, t)
		}
	}
	// One batched forward pass over the whole directory.
	batch := infer.New(m).PredictBatch(tables)
	for i, t := range tables {
		fmt.Printf("table %s (%q):\n", t.ID, t.Name)
		for _, p := range batch[i] {
			fmt.Printf("  %-24s [%s] → %-45s (%.2f)\n", p.Header, p.Kind, p.Type, p.Confidence)
		}
	}
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "pythagoras-model.bin", "model path")
	addr := fs.String("addr", ":8080", "listen address")
	minConf := fs.Float64("min-confidence", 0.3, "discovery-index confidence threshold")
	workers := fs.Int("workers", 0, "inference prepare workers (0 = NumCPU)")
	debug := fs.Bool("debug", false, "mount /debug/pprof and /debug/vars")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline, queue wait included (0 = unbounded; expiry → 504)")
	maxInflight := fs.Int("max-inflight", 64, "max concurrently processed requests; as many again may queue, the rest are shed with 429 (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
	traceSample := fs.Float64("trace-sample", 0.01, "fraction of request traces kept (errored/slow traces are always kept)")
	traceBuffer := fs.Int("trace-buffer", obs.DefaultTraceBuffer, "trace ring-buffer capacity served by /v1/traces")
	traceSlow := fs.Duration("trace-slow", time.Second, "always keep traces at least this long (0 disables)")
	sloTarget := fs.Float64("slo-target", server.DefaultSLOTarget, "SLO success-ratio objective in (0,1); budget and burn rates derive from it (see /v1/slo)")
	sloLatencyMs := fs.Int("slo-latency-ms", int(server.DefaultSLOLatency/time.Millisecond), "latency-objective threshold in milliseconds: slower responses burn the latency SLO budget")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	shadowSample := fs.Float64("shadow-sample", 1, "fraction of live traffic double-scored on a shadowing candidate model (deterministic seeded sampling; see POST /v1/models)")
	modelsDir := fs.String("models-dir", "", "confine POST /v1/models checkpoint paths to this directory (empty = any readable path)")
	rescoreCkpt := fs.String("rescore-checkpoint", "", "durable cursor path for lake re-scores (POST /v1/index/rescore); empty keeps the cursor in memory only, so a crashed re-score restarts instead of resuming")
	rescoreBatch := fs.Int("rescore-batch", 16, "tables per engine batch during a lake re-score")
	watchInterval := fs.Duration("watch-interval", watch.DefaultInterval, "anomaly-watchdog evaluation period (0 disables the background loop; rules still evaluate on demand in tests)")
	flightDir := fs.String("flight-dir", "", "directory for watchdog flight records (metrics+traces+profiles captured when an alert fires); empty disables capture")
	flightMax := fs.Int("flight-max", watch.DefaultFlightMax, "on-disk flight-record ring size; oldest records are evicted beyond this")
	agreeMin := fs.Float64("shadow-agreement-min", server.DefaultShadowAgreementMin, "shadow agreement rate below which the watchdog auto-rolls-back the candidate")
	agreeWindow := fs.Duration("shadow-agreement-window", server.DefaultShadowAgreementWindow, "how long shadow agreement must stay below -shadow-agreement-min before auto-rollback")
	dim, layers := encoderFlags(fs)
	fs.Parse(args)
	slog := structuredLogger(*logFormat)

	// LoadServing resolves the checkpoint and its optional drift sidecar in
	// one step — the same path POST /v1/models uses for candidates, so boot
	// and hot-load cannot disagree about what a serving model is.
	bundle, err := core.LoadServing(*modelPath, core.Config{Encoder: buildEncoder(*dim, *layers)})
	if err != nil {
		log.Fatal(err)
	}
	m := bundle.Model
	eng := infer.New(m, infer.WithWorkers(*workers), infer.WithMetrics(obs.NewRegistry()))
	// The drift sidecar is optional — a model trained before baselines
	// existed still serves, just without drift gauges.
	if bundle.Drift != nil {
		eng.EnableDrift(bundle.Drift)
		log.Printf("pythagoras: drift baseline loaded from %s", core.DriftSidecarPath(*modelPath))
	} else if bundle.DriftErr != nil {
		log.Printf("pythagoras: drift baseline unusable, serving without drift telemetry: %v", bundle.DriftErr)
	}
	recorder := obs.NewTraceRecorder(obs.TraceConfig{
		SampleRate: *traceSample, SlowThreshold: *traceSlow, Buffer: *traceBuffer,
	})
	sloEng := slo.New(slo.DefaultObjectives(*sloTarget, time.Duration(*sloLatencyMs)*time.Millisecond))
	opts := []server.Option{
		server.WithLogger(log.Default()), server.WithDebug(*debug),
		server.WithRequestTimeout(*requestTimeout), server.WithMaxInflight(*maxInflight),
		server.WithTraceRecorder(recorder), server.WithSLO(sloEng),
		server.WithShadowSample(*shadowSample),
		server.WithRescoreBatch(*rescoreBatch),
		server.WithWatchInterval(*watchInterval),
		server.WithShadowAgreement(*agreeMin, *agreeWindow),
	}
	if *flightDir != "" {
		opts = append(opts, server.WithFlightDir(*flightDir, *flightMax))
	}
	if *modelsDir != "" {
		opts = append(opts, server.WithModelsDir(*modelsDir))
	}
	if *rescoreCkpt != "" {
		opts = append(opts, server.WithRescoreCheckpoint(*rescoreCkpt))
	}
	if slog != nil {
		opts = append(opts, server.WithLogz(slog.With("component", "server")))
	}
	srv := server.NewWithEngine(eng, *minConf, opts...)
	log.Printf("pythagoras serving on %s (vocabulary: %d types, debug=%v, request-timeout=%s, max-inflight=%d, slo-target=%g, slo-latency=%dms)",
		*addr, len(m.Types()), *debug, *requestTimeout, *maxInflight, *sloTarget, *sloLatencyMs)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	if *watchInterval > 0 {
		srv.Watchdog().Start(ctx)
	}
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain in two layers: the app server first turns traffic away and
	// waits for in-flight inference (healthz flips to draining so the load
	// balancer pulls the instance), then the HTTP server closes listeners
	// and waits for connections to go idle.
	log.Printf("pythagoras: signal received, draining (budget %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("pythagoras: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pythagoras: http shutdown: %v", err)
	}
	log.Printf("pythagoras: shutdown complete")
}
