# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: check build test vet race bench bench-json experiments experiments-full corpora clean

# The default pre-merge gate: compile, lint, unit tests, then the race pass
# over the concurrent serving path.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the concurrent serving path: the staged inference engine, the
# sharded encoder cache, and the HTTP server that drives them.
race:
	$(GO) test -race ./internal/core/... ./internal/infer/... ./internal/lm/... ./internal/server/...

# One quick-scale pass per paper table/figure plus component micro-benches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable serving-latency baseline: ns/op for PredictBatch at batch
# sizes 1/4/16, written to BENCH_infer.json for regression tracking.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPredictBatch/' -benchtime=10x . \
		| awk 'BEGIN { printf "{" } \
		       /^BenchmarkPredictBatch\// { \
		           name=$$1; sub(/^BenchmarkPredictBatch\//, "", name); sub(/-[0-9]+$$/, "", name); \
		           if (n++) printf ","; printf "\n  \"%s_ns_per_op\": %s", name, $$3 } \
		       END { printf "\n}\n" }' \
		| tee BENCH_infer.json

# Reproduce the paper's evaluation at reduced scale (minutes).
experiments:
	$(GO) run ./cmd/experiments -exp all -scale reduced -out paper_results.txt

# Paper-scale corpora and 5 seeds (hours of single-core CPU).
experiments-full:
	$(GO) run ./cmd/experiments -exp all -scale full -out paper_results_full.txt

# Generate both corpora as CSV trees under ./corpora.
corpora:
	$(GO) run ./cmd/datagen -corpus both -out ./corpora

clean:
	rm -rf corpora pythagoras-model.bin
