# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: check build test vet lint-spans lint-alloc race cover fuzz bench bench-json loadtest profile experiments experiments-full corpora clean

# The default pre-merge gate: compile, lint, unit tests, the race pass over
# the concurrent serving path (chaos suite included), and the coverage floor.
check: build vet lint-spans lint-alloc test race cover

# Span hygiene: every obs.StartSpan must have a matching End in the same
# function — a leaked span never reaches the trace recorder.
lint-spans:
	$(GO) run ./cmd/lintspans

# Hot-path allocation hygiene: internal/autodiff, internal/gnn and
# internal/infer must use the Into/AddInto product kernels; the allocating
# conveniences (tensor.MatMul & friends) fail the build there.
lint-alloc:
	$(GO) run ./cmd/lintalloc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the concurrent paths: the staged inference engine, the
# data-parallel trainer (worker-count bit-identity + train chaos suites live
# in internal/core), the shared worker pool, the sharded encoder cache, the
# fault-injection hooks, and the HTTP server — this is what runs the
# cancellation/shedding/shutdown chaos suites under the race detector.
# -p 1 serializes the packages: the chaos suites assert wall-clock drain
# bounds, and running them alongside the (CPU-heavy) training race tests on
# a small machine starves those timers into flakes.
race:
	$(GO) test -race -p 1 ./internal/core/... ./internal/infer/... ./internal/par/... ./internal/lm/... ./internal/server/... ./internal/faultinject/... ./internal/obs/... ./internal/loadgen/... ./internal/discovery/... ./internal/rescore/...

# Total statement coverage floor, last raised when the watchdog/flight
# recorder PR landed; `make cover` fails if the tree ever drops below it.
COVER_MIN = 87.7

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { pct = $$3; sub(/%/, "", pct); \
		   printf "total coverage %s (floor %s%%)\n", $$3, min; \
		   if (pct + 0 < min + 0) { print "FAIL: coverage below floor"; exit 1 } }'

# Short-budget fuzz pass over every fuzz target. go test accepts a single
# -fuzz pattern per invocation, hence one line per target; the committed
# seed corpora under testdata/fuzz/ run in the ordinary `make test` too.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s ./internal/table/
	$(GO) test -run '^$$' -fuzz FuzzCSVTable -fuzztime 10s ./internal/table/
	$(GO) test -run '^$$' -fuzz FuzzTableRequestDecode -fuzztime 10s ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzModelsRequestDecode -fuzztime 10s ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzModelLoad -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/rescore/

# One quick-scale pass per paper table/figure plus component micro-benches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Machine-readable performance baselines for regression tracking:
#  - BENCH_infer.json — ns/op for PredictBatch at batch sizes 1/4/16, plus
#    the observability overhead pair (bare engine vs metrics+drift+tracing
#    at batch 16 with 1% sampling)
#  - BENCH_train.json — ns/op for one training epoch at 1/4/8/16 workers
#    (results are bit-identical at every count; only the time changes)
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPredictBatch/|BenchmarkObsOverhead/' -benchtime=10x . \
		| awk 'BEGIN { printf "{" } \
		       /^BenchmarkPredictBatch\// { \
		           name=$$1; sub(/^BenchmarkPredictBatch\//, "", name); sub(/-[0-9]+$$/, "", name); \
		           if (n++) printf ","; printf "\n  \"%s_ns_per_op\": %s", name, $$3 } \
		       /^BenchmarkObsOverhead\// { \
		           name=$$1; sub(/^BenchmarkObsOverhead\//, "", name); sub(/-[0-9]+$$/, "", name); \
		           if (n++) printf ","; printf "\n  \"%s_ns_per_op\": %s", name, $$3 } \
		       END { printf "\n}\n" }' \
		| tee BENCH_infer.json
	$(GO) test -run '^$$' -bench 'BenchmarkTrainEpoch/' -benchtime=3x . \
		| awk 'BEGIN { printf "{" } \
		       /^BenchmarkTrainEpoch\// { \
		           name=$$1; sub(/^BenchmarkTrainEpoch\//, "", name); sub(/-[0-9]+$$/, "", name); \
		           if (n++) printf ","; printf "\n  \"%s_ns_per_op\": %s", name, $$3 } \
		       END { printf "\n}\n" }' \
		| tee BENCH_train.json

# Serving-path benchmark: the open-loop load harness (cmd/loadgen) trains a
# small model in-process, serves it behind a bounded admission queue with a
# deterministic injected service time, and runs the soak+burst suite —
# achieved-vs-offered QPS, p50/p90/p99/p999 latency (measured from scheduled
# send times, coordinated-omission-safe), shed rate, per-status counts, and
# the server's SLO burn-rate response, all into BENCH_serve.json.
loadtest:
	$(GO) run ./cmd/loadgen -suite -qps 100 -duration 10s -warmup 2s -out BENCH_serve.json

# CPU profile of one training epoch (the substrate's hottest loop):
# emits cpu.pprof + the train-epoch test binary for
# `go tool pprof pythagoras.test cpu.pprof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkTrainEpoch/workers1' -benchtime=3x \
		-cpuprofile cpu.pprof -o pythagoras.test .
	@echo "wrote cpu.pprof — inspect with: $(GO) tool pprof pythagoras.test cpu.pprof"

# Reproduce the paper's evaluation at reduced scale (minutes).
experiments:
	$(GO) run ./cmd/experiments -exp all -scale reduced -out paper_results.txt

# Paper-scale corpora and 5 seeds (hours of single-core CPU).
experiments-full:
	$(GO) run ./cmd/experiments -exp all -scale full -out paper_results_full.txt

# Generate both corpora as CSV trees under ./corpora.
corpora:
	$(GO) run ./cmd/datagen -corpus both -out ./corpora

clean:
	rm -rf corpora pythagoras-model.bin cpu.pprof pythagoras.test
