# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: build test vet race bench experiments experiments-full corpora clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the concurrent serving path: the staged inference engine, the
# sharded encoder cache, and the HTTP server that drives them.
race:
	$(GO) test -race ./internal/core/... ./internal/infer/... ./internal/lm/... ./internal/server/...

# One quick-scale pass per paper table/figure plus component micro-benches.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Reproduce the paper's evaluation at reduced scale (minutes).
experiments:
	$(GO) run ./cmd/experiments -exp all -scale reduced -out paper_results.txt

# Paper-scale corpora and 5 seeds (hours of single-core CPU).
experiments-full:
	$(GO) run ./cmd/experiments -exp all -scale full -out paper_results_full.txt

# Generate both corpora as CSV trees under ./corpora.
corpora:
	$(GO) run ./cmd/datagen -corpus both -out ./corpora

clean:
	rm -rf corpora pythagoras-model.bin
