package pythagoras_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	pythagoras "github.com/sematype/pythagoras"
)

// apiEncoder keeps the public-API tests fast.
func apiEncoder() *pythagoras.Encoder {
	return pythagoras.NewEncoder(pythagoras.EncoderConfig{
		Dim: 32, Layers: 1, Heads: 2, FFNDim: 64, MaxLen: 256, Buckets: 1 << 12, Seed: 7,
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	corpus := pythagoras.GenerateSportsTables(pythagoras.SportsConfig{
		NumTables: 40, Seed: 11, MinRows: 6, MaxRows: 10, WeakNameProb: 0.1, Domains: 3,
	})
	enc := apiEncoder()
	rng := rand.New(rand.NewSource(1))
	train, val, test := pythagoras.TrainValTestSplit(len(corpus.Tables), rng)

	cfg := pythagoras.DefaultConfig(enc)
	cfg.Epochs = 10
	cfg.Patience = 10
	model, err := pythagoras.Train(corpus, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Predict and score through the public API only.
	var preds []pythagoras.Prediction
	for _, ti := range test {
		tb := corpus.Tables[ti]
		for _, p := range model.PredictTable(tb) {
			gold, ok := corpus.LabelIndex[tb.Columns[p.ColIndex].SemanticType]
			if !ok {
				continue
			}
			pred := corpus.LabelIndex[p.Type]
			preds = append(preds, pythagoras.Prediction{
				True: gold, Pred: pred, Numeric: p.Kind == pythagoras.KindNumeric,
			})
		}
	}
	scores := pythagoras.ComputeScores(preds)
	if scores.Overall.N == 0 {
		t.Fatal("no predictions scored")
	}
	if scores.Overall.WeightedF1 < 0.05 {
		t.Fatalf("public-API training produced chance-level model: %.3f", scores.Overall.WeightedF1)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	corpus := pythagoras.GenerateSportsTables(pythagoras.SportsConfig{
		NumTables: 22, Seed: 3, MinRows: 5, MaxRows: 8, WeakNameProb: 0, Domains: 2,
	})
	enc := apiEncoder()
	cfg := pythagoras.DefaultConfig(enc)
	cfg.Epochs = 2
	cfg.Patience = 2
	model, err := pythagoras.Train(corpus, []int{0, 1, 2, 3}, []int{4, 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pythagoras.LoadModel(path, pythagoras.Config{Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	a := model.PredictTable(corpus.Tables[6])
	b := loaded.PredictTable(corpus.Tables[6])
	if len(a) != len(b) {
		t.Fatal("prediction counts differ after reload")
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			t.Fatal("reloaded model predicts differently")
		}
	}
}

func TestPublicAPICorpusRoundTrip(t *testing.T) {
	corpus := pythagoras.GenerateGitTables(pythagoras.GitConfig{
		NumTables: 20, Seed: 5, MinRows: 5, MaxRows: 8, NameHintProb: 0.5, MinSupport: 1,
	})
	dir := t.TempDir()
	if err := pythagoras.SaveTables(dir, corpus.Tables); err != nil {
		t.Fatal(err)
	}
	tables, err := pythagoras.LoadTables(dir)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := pythagoras.NewCorpus("reloaded", tables)
	if len(reloaded.Tables) != len(corpus.Tables) {
		t.Fatalf("tables: %d vs %d", len(reloaded.Tables), len(corpus.Tables))
	}
	if len(reloaded.Types) == 0 {
		t.Fatal("vocabulary lost on round trip")
	}
	if err := reloaded.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	if pythagoras.DefaultEncoderConfig().Dim <= 0 {
		t.Fatal("bad default encoder config")
	}
	if pythagoras.PaperScaleEncoderConfig().Dim != 768 {
		t.Fatal("paper-scale encoder must be 768-d")
	}
	if pythagoras.DefaultSportsConfig().NumTables != 1187 {
		t.Fatal("default SportsTables scale must match Table 1")
	}
	if pythagoras.DefaultGitConfig().NumTables != 6577 {
		t.Fatal("default GitTables scale must match Table 1")
	}
}
