package pythagoras_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the real binaries end to end:
// datagen → pythagoras train → pythagoras predict.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration test")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Env = os.Environ()
		if raw, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, raw)
		}
		return out
	}
	datagen := build("datagen", "./cmd/datagen")
	pyth := build("pythagoras", "./cmd/pythagoras")

	work := t.TempDir()
	run := func(name string, args ...string) string {
		cmd := exec.Command(name, args...)
		cmd.Dir = work
		raw, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(name), args, err, raw)
		}
		return string(raw)
	}

	// 1. Generate a tiny corpus.
	out := run(datagen, "-corpus", "sports", "-tables", "24", "-out", work)
	if !strings.Contains(out, "SportsTables") {
		t.Fatalf("datagen output: %s", out)
	}
	corpusDir := filepath.Join(work, "sportstables")
	entries, err := os.ReadDir(corpusDir)
	if err != nil || len(entries) < 24 {
		t.Fatalf("corpus dir: %v, %d entries", err, len(entries))
	}

	// 2. Train briefly.
	model := filepath.Join(work, "model.bin")
	out = run(pyth, "train", "-data", corpusDir, "-model", model,
		"-epochs", "3", "-dim", "16", "-lm-layers", "1")
	if !strings.Contains(out, "model saved") {
		t.Fatalf("train output: %s", out)
	}

	// 3. Evaluate the saved model.
	out = run(pyth, "eval", "-data", corpusDir, "-model", model,
		"-dim", "16", "-lm-layers", "1")
	if !strings.Contains(out, "weighted F1") {
		t.Fatalf("eval output: %s", out)
	}

	// 4. Predict one table.
	out = run(pyth, "predict", "-data", corpusDir, "-model", model,
		"-table", "sports_00000", "-dim", "16", "-lm-layers", "1")
	if !strings.Contains(out, "sports_00000") || !strings.Contains(out, "→") {
		t.Fatalf("predict output: %s", out)
	}
}
