// Package pythagoras is the public API of the Pythagoras semantic type
// detection library — a reproduction of "Pythagoras: Semantic Type
// Detection of Numerical Data in Enterprise Data Lakes" (EDBT 2024).
//
// Pythagoras predicts the semantic type (e.g.
// "basketball.player.assists_per_game") of table columns, and is designed
// specifically to work on numerical columns, where the values alone are
// rarely informative enough: it represents each table as a heterogeneous
// graph whose directed edges inject textual context (table name,
// non-numerical columns) and statistical features into every numerical
// column's representation through GNN message passing.
//
// Minimal usage:
//
//	enc := pythagoras.NewEncoder(pythagoras.DefaultEncoderConfig())
//	cfg := pythagoras.DefaultConfig(enc)
//	model, err := pythagoras.Train(corpus, trainIdx, valIdx, cfg)
//	preds := model.PredictTable(someTable)
//
// The subpackages of internal/ hold the implementation: the frozen text
// encoder (internal/lm), the 192-feature extractor (internal/features),
// the table graph (internal/graph), the heterogeneous GNN (internal/gnn),
// the five baseline models of the paper (internal/baselines), the two
// synthetic corpora (internal/data) and the experiment harness
// (internal/experiments). This package re-exports everything an adopter
// needs.
package pythagoras

import (
	"github.com/sematype/pythagoras/internal/core"
	"github.com/sematype/pythagoras/internal/data"
	"github.com/sematype/pythagoras/internal/eval"
	"github.com/sematype/pythagoras/internal/graph"
	"github.com/sematype/pythagoras/internal/infer"
	"github.com/sematype/pythagoras/internal/lm"
	"github.com/sematype/pythagoras/internal/table"
)

// Core model types.
type (
	// Model is a trained Pythagoras classifier.
	Model = core.Model
	// Config controls model geometry and training.
	Config = core.Config
	// ColumnPrediction is the user-facing prediction for one column.
	ColumnPrediction = core.ColumnPrediction
	// Encoder is the frozen text encoder standing in for the paper's
	// pre-trained BERT.
	Encoder = lm.Encoder
	// EncoderConfig describes the frozen encoder.
	EncoderConfig = lm.Config
)

// Table model types.
type (
	// Table is a named table with ordered, semantically labeled columns.
	Table = table.Table
	// Column is one table column.
	Column = table.Column
	// Kind distinguishes numerical from non-numerical columns.
	Kind = table.Kind
	// Corpus is a set of labeled tables with a type vocabulary.
	Corpus = data.Corpus
)

// Column kinds.
const (
	KindText    = table.KindText
	KindNumeric = table.KindNumeric
)

// GraphOptions carries the ablation switches of the table-graph builder
// (Table 4 of the paper).
type GraphOptions = graph.BuildOptions

// Evaluation types.
type (
	// Prediction pairs gold and predicted class for scoring.
	Prediction = eval.Prediction
	// Scores aggregates weighted/macro F1 and accuracy.
	Scores = eval.Scores
	// SplitScores reports metrics for numerical, non-numerical and all
	// columns — the breakdown of the paper's Tables 2–3.
	SplitScores = eval.Split
)

// NewEncoder builds the deterministic frozen text encoder. Two encoders
// with equal configs are functionally identical ("the same pre-trained
// checkpoint").
func NewEncoder(cfg EncoderConfig) *Encoder { return lm.NewEncoder(cfg) }

// DefaultEncoderConfig returns the reduced-scale encoder configuration;
// PaperScaleEncoderConfig mirrors bert-base-uncased's geometry.
func DefaultEncoderConfig() EncoderConfig { return lm.DefaultConfig() }

// PaperScaleEncoderConfig mirrors bert-base-uncased (768 hidden, 12
// layers, 512 tokens).
func PaperScaleEncoderConfig() EncoderConfig { return lm.PaperScaleConfig() }

// DefaultConfig returns the default training configuration around enc.
func DefaultConfig(enc *Encoder) Config { return core.DefaultConfig(enc) }

// Engine is the staged inference engine (Encode → BuildGraph → Forward):
// the production serving path. It prepares tables in parallel and unions
// their graphs into one forward pass; Engine.PredictBatch output is
// bit-identical to looping Model.PredictTable.
type Engine = infer.Engine

// NewEngine builds an inference engine around a trained model.
func NewEngine(m *Model, opts ...EngineOption) *Engine { return infer.New(m, opts...) }

// EngineOption configures an Engine (worker pool size, forward-pass batch
// bound).
type EngineOption = infer.Option

// WithWorkers sets the engine's prepare-stage worker count.
var WithWorkers = infer.WithWorkers

// WithMaxBatch sets how many tables the engine's Evaluate unions per
// forward pass.
var WithMaxBatch = infer.WithMaxBatch

// Train fits a Pythagoras model on corpus using the given table index
// splits (validation drives early stopping; pass nil to disable).
func Train(c *Corpus, trainIdx, valIdx []int, cfg Config) (*Model, error) {
	return core.Train(c, trainIdx, valIdx, cfg)
}

// LoadModel reads a model written by Model.SaveFile. cfg must supply an
// encoder whose width matches the saved model.
func LoadModel(path string, cfg Config) (*Model, error) { return core.LoadFile(path, cfg) }

// TrainValTestSplit partitions n tables into the paper's 60/20/20 splits.
var TrainValTestSplit = eval.TrainValTestSplit

// ComputeScores scores a prediction set (weighted F1, macro F1, accuracy)
// split by column kind.
func ComputeScores(preds []Prediction) *SplitScores { return eval.ComputeSplit(preds) }

// LoadTables reads a directory of <id>.csv (+ optional <id>.labels.json
// sidecars) into tables.
var LoadTables = table.LoadDir

// SaveTables writes tables as CSV + label sidecars.
var SaveTables = table.SaveDir

// NewCorpus wraps tables into a corpus and derives its type vocabulary.
func NewCorpus(name string, tables []*Table) *Corpus {
	c := &Corpus{Name: name, Tables: tables}
	c.BuildVocabulary()
	return c
}

// GenerateSportsTables builds the synthetic SportsTables corpus (Table 1
// of the paper at default configuration).
var GenerateSportsTables = data.GenerateSportsTables

// GenerateGitTables builds the synthetic GitTables Numeric corpus.
var GenerateGitTables = data.GenerateGitTables

// Generator configuration re-exports.
type (
	// SportsConfig controls the SportsTables generator.
	SportsConfig = data.SportsConfig
	// GitConfig controls the GitTables Numeric generator.
	GitConfig = data.GitConfig
)

// DefaultSportsConfig / DefaultGitConfig mirror the paper's corpus scales;
// the Reduced variants run in seconds.
var (
	DefaultSportsConfig = data.DefaultSportsConfig
	ReducedSportsConfig = data.ReducedSportsConfig
	DefaultGitConfig    = data.DefaultGitConfig
	ReducedGitConfig    = data.ReducedGitConfig
)
