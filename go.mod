module github.com/sematype/pythagoras

go 1.22
